"""Parallel, cell-based campaign engine over hierarchical unit cells.

The paper's campaign (Table 1 plus Figs. 1-6 across five services) is a grid
of independent simulations.  This module makes that grid explicit — and
fine-grained:

* :class:`CampaignCell` — one (stage, service, *unit*) coordinate plus the
  seed and the knobs (repetitions, idle duration, resolver count) it needs
  to run.  A *unit* is a stage's natural sub-division: the performance
  stage schedules one cell per (service, workload), the delta stage one per
  modification pattern (append vs. random offset), the compression stage
  one per content class; stages without natural sub-units keep a single
  whole-service unit (:data:`WHOLE_SERVICE_UNIT`).
* :func:`run_cell` — executes one cell and times it (a module-level function
  so cells can be shipped to ``concurrent.futures`` worker processes);
* :class:`CampaignRunner` — plans the cell grid, fans it out over a process
  pool (``jobs`` workers) and merges the per-cell payloads back into the
  exact :class:`~repro.core.runner.SuiteResult` the sequential runner used
  to produce, so ``summary_text()`` and every table/figure renderer are
  untouched.  Given a :class:`~repro.core.store.ResultStore`, the runner
  consults the store before dispatching: already-computed cells are loaded,
  fresh cells are persisted as they complete, and an interrupted or
  extended campaign resumes incrementally — cached and freshly-computed
  cells merge into a bit-identical suite.

A campaign plan is really ``grid × seeds``: :class:`CampaignRunner`
accepts a *seed list*, plans the same (stage, service, unit) grid once per
seed (ascending), and :meth:`CampaignRunner.run_sweep` groups the per-seed
results into a :class:`~repro.core.sweep.SweepResult` whose cross-seed
statistics live in :mod:`repro.core.sweep`.  A single-seed campaign plans
exactly the cell list it always did.

Determinism: every cell carries the campaign seed, and each experiment
derives its random streams from ``(seed, service, ...)`` labels
(:func:`repro.randomness.derive_seed`), so a cell's output is a pure
function of its (stage, service, unit, seed, config) identity — independent
of scheduling, of which other cells run, and of whether they run in the
same process.  That purity is exactly what makes the identity usable as a
cache key.  Merging happens in plan order, never completion order.
``jobs=4`` therefore produces results bit-identical to ``jobs=1``, which in
turn are bit-identical to the standalone per-stage commands and to a
cache-served re-run for the same seed.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.capabilities import CapabilityMatrix, CapabilityProber
from repro.core.experiments.compression import CONTENT_CLASSES, CompressionExperiment, CompressionExperimentResult
from repro.core.experiments.datacenters import DataCenterExperiment, DataCenterResult
from repro.core.experiments.delta import DELTA_CASES, DeltaEncodingExperiment, DeltaResult
from repro.core.experiments.idle import IdleExperiment, IdleResult
from repro.core.experiments.performance import PerformanceExperiment, PerformanceResult
from repro.core.experiments.synseries import SynSeriesExperiment, SynSeriesResult
from repro.core.store import ResultStore
from repro.core.workloads import PAPER_WORKLOADS, workload_by_name
from repro.errors import ConfigurationError, UnknownServiceError
from repro.filegen.model import FileKind
from repro.load.population import LoadParameters, LoadStageResult, run_load_cell
from repro.netsim.scenario import BASELINE, ScenarioSpec
from repro.obs.recorder import campaign_trace_document, cell_flight_record, harness_record
from repro.obs.tracer import NULL_TRACER, Tracer, activate
from repro.randomness import DEFAULT_SEED
from repro.services.registry import (
    SERVICE_NAMES,
    get_profile,
    install_registered_specs,
    registry_sync_payload,
)
from repro.units import format_population, mbps, minutes, parse_population

__all__ = [
    "STAGES",
    "SYN_SERIES_SERVICES",
    "syn_series_services",
    "WHOLE_SERVICE_UNIT",
    "RESULTS_DOC_VERSION",
    "worker_service_payload",
    "init_worker_services",
    "CampaignConfig",
    "CampaignCell",
    "CellFailure",
    "CellResult",
    "CampaignResult",
    "CampaignRunner",
    "run_cell",
    "merge_cell_results",
    "results_document",
    "suite_stage_rows",
    "default_jobs",
]

#: Version of the deterministic results document (``--json``).  Unlike the
#: full campaign record, the document contains no wall clocks, worker counts
#: or cache provenance — only fields that are a pure function of
#: (plan, seed, config) — so a sharded multi-runner campaign merged from the
#: store serializes byte-identically to a sequential ``cloudbench all`` run.
RESULTS_DOC_VERSION = 1

#: Fig. 3 is only plotted for the two services with per-file connections.
SYN_SERIES_SERVICES = ("clouddrive", "googledrive")


def syn_series_services(services: Sequence[str]) -> List[str]:
    """The subset of ``services`` Fig. 3 (the SYN series) applies to.

    The paper's two culprits keep their fixed slots and ordering
    (plan-order compatibility with every earlier release); other services
    join — in the caller's order — when their declarative connection
    policy shows the same per-file pattern, so a spec-defined service with
    per-file connections gets its SYN series both in the campaign and in
    the standalone ``connections`` subcommand.  Falls back to all of
    ``services`` when none qualifies (the pre-existing behaviour for e.g.
    ``--services dropbox connections``).
    """
    wanted = [name for name in SYN_SERIES_SERVICES if name in services]
    for name in services:
        if name in SYN_SERIES_SERVICES:
            continue
        try:
            if get_profile(name).connections.new_storage_connection_per_file:
                wanted.append(name)
        except UnknownServiceError:
            continue
    return wanted or list(services)

#: Unit label of stages that schedule one cell per whole service.
WHOLE_SERVICE_UNIT = "-"


def default_jobs() -> int:
    """Default worker count: one per CPU."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class CampaignConfig:
    """The fidelity/runtime knobs shared by every cell of one campaign.

    ``scenario`` is the network condition the whole campaign runs under
    (:class:`~repro.netsim.scenario.ScenarioSpec`): it travels inside every
    cell, is part of every cache key, and defaults to the identity
    :data:`~repro.netsim.scenario.BASELINE` — under which all outputs stay
    byte-identical to the pre-scenario era.  (Runtime-registered *services*,
    by contrast, are addressed by name; pools replicate them into workers
    via :func:`init_worker_services`.)
    """

    repetitions: int = 3
    idle_duration: float = minutes(16)
    resolver_count: int = 500
    planetlab_count: int = 300
    scenario: ScenarioSpec = field(default_factory=lambda: BASELINE)
    #: Population sizes the ``load`` stage plans one unit cell per (the
    #: labels are the canonical ``1k``/``10k``/``1M`` spellings).
    load_populations: Tuple[int, ...] = (1_000, 10_000)
    #: Seconds the whole population is offered over — the arrival rate is
    #: ``population / window``, so bigger populations mean heavier load.
    load_window: float = 60.0
    #: Arrival process: ``poisson`` or ``diurnal``.
    load_arrival: str = "poisson"
    #: Service-edge concurrency limit (sessions in service; the rest queue FIFO).
    load_edge_concurrency: int = 64
    #: Shared-link capacity in bits/s.  Infrastructure-side: deliberately
    #: not warped by the scenario, which shapes the per-session access path.
    load_link_capacity_bps: float = mbps(400.0)
    #: Mean per-session transfer size in bytes (exponentially distributed).
    load_transfer_bytes: int = 100_000
    #: Plan one performance cell per repetition (``upload#r0`` …) instead of
    #: one per workload — finer shards toward the paper's 24 repetitions.
    rep_cells: bool = False


@dataclass(frozen=True)
class CampaignCell:
    """One independently schedulable unit: one stage × service × unit.

    ``unit`` is the stage's sub-division label (a workload name, a delta
    case, a content class) or :data:`WHOLE_SERVICE_UNIT` for stages that
    run whole-service cells.
    """

    stage: str
    service: str
    seed: int
    unit: str = WHOLE_SERVICE_UNIT
    config: CampaignConfig = field(default_factory=CampaignConfig)

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``"performance/dropbox/1x100kB@7"``.

        The seed is part of the key: a sweep plans the same (stage,
        service, unit) grid once per seed, and claims, shard accounting and
        merge diagnostics must tell those cells apart.
        """
        if self.unit == WHOLE_SERVICE_UNIT:
            return f"{self.stage}/{self.service}@{self.seed}"
        return f"{self.stage}/{self.service}/{self.unit}@{self.seed}"


# --------------------------------------------------------------------------- #
# Stage registry: unit planner + per-cell runner + SuiteResult merge rules
# --------------------------------------------------------------------------- #
def _single_unit(config: CampaignConfig) -> Sequence[str]:
    return (WHOLE_SERVICE_UNIT,)


def _performance_units(config: CampaignConfig) -> Sequence[str]:
    names = tuple(workload.name for workload in PAPER_WORKLOADS)
    if config.rep_cells:
        # One cell per (workload, repetition): units stay workload-major so
        # folding in plan order reproduces run_pair's repetition loop, and
        # the merged rows stay bit-identical to the coarse plan.
        return tuple(
            f"{name}#r{repetition}" for name in names for repetition in range(config.repetitions)
        )
    return names


def _delta_units(config: CampaignConfig) -> Sequence[str]:
    return tuple(DELTA_CASES)


def _compression_units(config: CampaignConfig) -> Sequence[str]:
    return tuple(kind.value for kind in CONTENT_CLASSES)


def _load_units(config: CampaignConfig) -> Sequence[str]:
    # Ascending numeric order (1k < 10k < 100k < 1M) — the plan, and
    # therefore every table, CSV and JSON document, must never fall back
    # to lexical ordering of the labels.
    return tuple(
        format_population(population)
        for population in sorted(dict.fromkeys(config.load_populations))
    )


@dataclass(frozen=True)
class _StageSpec:
    """Everything the engine needs to know about one campaign stage.

    ``name`` doubles as the :class:`~repro.core.runner.SuiteResult`
    attribute holding the stage's merged container.  ``units`` is the
    stage's planner: the sub-unit labels one service splits into (most
    stages have a single whole-service unit).  Adding a stage means adding
    exactly one spec (plus the ``SuiteResult`` field).
    """

    name: str
    run: Callable[[CampaignCell], Any]
    empty: Callable[[Any], Any]  # payload -> fresh merged-stage container
    fold: Callable[[Any, CampaignCell, Any], None]  # container, cell, payload
    units: Callable[[CampaignConfig], Sequence[str]] = _single_unit


def _run_capabilities(cell: CampaignCell) -> Any:
    return CapabilityProber(seed=cell.seed, scenario=cell.config.scenario).probe_service(cell.service)


def _run_idle(cell: CampaignCell) -> Any:
    experiment = IdleExperiment(
        [cell.service], duration=cell.config.idle_duration, seed=cell.seed, scenario=cell.config.scenario
    )
    return experiment.run_service(cell.service)


def _run_datacenters(cell: CampaignCell) -> Any:
    # Discovery measures the simulated world's geography (DNS, whois, RTT
    # probes from global vantage points), not the client's access path —
    # the scenario deliberately does not warp it.
    experiment = DataCenterExperiment(
        [cell.service],
        resolver_count=cell.config.resolver_count,
        planetlab_count=cell.config.planetlab_count,
        seed=cell.seed,
    )
    return experiment.run_service(cell.service)


def _run_syn_series(cell: CampaignCell) -> Any:
    experiment = SynSeriesExperiment([cell.service], seed=cell.seed, scenario=cell.config.scenario)
    return experiment.run_service(cell.service)


def _run_delta(cell: CampaignCell) -> Any:
    experiment = DeltaEncodingExperiment([cell.service], seed=cell.seed, scenario=cell.config.scenario)
    if cell.unit == WHOLE_SERVICE_UNIT:
        return experiment.run_service(cell.service)
    return experiment.run_case(cell.service, cell.unit)


def _run_compression(cell: CampaignCell) -> Any:
    experiment = CompressionExperiment([cell.service], seed=cell.seed, scenario=cell.config.scenario)
    if cell.unit == WHOLE_SERVICE_UNIT:
        return experiment.run_service(cell.service)
    return experiment.run_kind(cell.service, FileKind(cell.unit))


def _run_performance(cell: CampaignCell) -> Any:
    experiment = PerformanceExperiment(
        [cell.service],
        repetitions=cell.config.repetitions,
        seed=cell.seed,
        scenario=cell.config.scenario,
    )
    if cell.unit == WHOLE_SERVICE_UNIT:
        return experiment.run_service(cell.service)
    name, marker, repetition = cell.unit.rpartition("#r")
    if marker and repetition.isdigit():
        return [experiment.run_single(cell.service, workload_by_name(name), int(repetition))]
    return experiment.run_pair(cell.service, workload_by_name(cell.unit))


def _run_load(cell: CampaignCell) -> Any:
    config = cell.config
    params = LoadParameters(
        population=parse_population(cell.unit),
        window_s=config.load_window,
        arrival=config.load_arrival,
        edge_concurrency=config.load_edge_concurrency,
        link_capacity_bps=config.load_link_capacity_bps,
        transfer_bytes=config.load_transfer_bytes,
    )
    return run_load_cell(cell.service, params, seed=cell.seed, scenario=config.scenario)


def _fold_matrix(container: CapabilityMatrix, cell: CampaignCell, payload: Any) -> None:
    container.add_service(payload)


def _fold_service_map(container: Any, cell: CampaignCell, payload: Any) -> None:
    container.services[cell.service] = payload


def _fold_report(container: DataCenterResult, cell: CampaignCell, payload: Any) -> None:
    container.reports[cell.service] = payload


def _fold_points(container: Any, cell: CampaignCell, payload: Any) -> None:
    container.points.extend(payload)


def _fold_runs(container: PerformanceResult, cell: CampaignCell, payload: Any) -> None:
    container.runs.extend(payload)


def _fold_load(container: LoadStageResult, cell: CampaignCell, payload: Any) -> None:
    container.summaries.append(payload)


_STAGE_SPECS: Dict[str, _StageSpec] = {
    spec.name: spec
    for spec in (
        _StageSpec("capabilities", _run_capabilities, lambda payload: CapabilityMatrix(), _fold_matrix),
        _StageSpec("idle", _run_idle, lambda payload: IdleResult(duration=payload.duration), _fold_service_map),
        _StageSpec("datacenters", _run_datacenters, lambda payload: DataCenterResult(), _fold_report),
        _StageSpec("syn_series", _run_syn_series, lambda payload: SynSeriesResult(), _fold_service_map),
        _StageSpec("delta", _run_delta, lambda payload: DeltaResult(), _fold_points, _delta_units),
        _StageSpec(
            "compression",
            _run_compression,
            lambda payload: CompressionExperimentResult(),
            _fold_points,
            _compression_units,
        ),
        _StageSpec("performance", _run_performance, lambda payload: PerformanceResult(), _fold_runs, _performance_units),
        _StageSpec("load", _run_load, lambda payload: LoadStageResult(), _fold_load, _load_units),
    )
}

#: Every campaign stage, in the paper's presentation order (Table 1, Figs. 1-6).
STAGES = tuple(_STAGE_SPECS)


def _spec(stage: str) -> _StageSpec:
    try:
        return _STAGE_SPECS[stage]
    except KeyError:
        raise ConfigurationError(
            f"unknown campaign stage {stage!r}; valid stages: {', '.join(STAGES)}"
        ) from None


# --------------------------------------------------------------------------- #
# Cell execution and results
# --------------------------------------------------------------------------- #
#: Traceback lines kept in a :class:`CellFailure` summary.
_TRACEBACK_TAIL_LINES = 6


@dataclass(frozen=True)
class CellFailure:
    """Why one cell failed, with enough context to debug it from the report.

    Pool workers cannot usefully re-raise: the parent sees a bare exception
    with no idea *which* cell died.  Instead a failing cell completes with
    this record attached — the identity coordinates, the exception, and the
    tail of its traceback — which flows into the timing table, the
    ``--timings-json`` record and the flight recorder.  Picklable by
    construction (strings only), so it survives the process-pool boundary.
    """

    stage: str
    service: str
    unit: str
    seed: int
    error_type: str
    message: str
    traceback_tail: str

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "service": self.service,
            "unit": self.unit,
            "seed": self.seed,
            "error_type": self.error_type,
            "message": self.message,
            "traceback_tail": self.traceback_tail,
        }

    def summary(self) -> str:
        return f"{self.stage}/{self.service}/{self.unit}@{self.seed}: {self.error_type}: {self.message}"


def _failure_for(cell: CampaignCell, error: BaseException) -> CellFailure:
    lines = traceback.format_exception(type(error), error, error.__traceback__)
    tail = "".join(lines)[-4096:].splitlines()[-_TRACEBACK_TAIL_LINES:]
    return CellFailure(
        stage=cell.stage,
        service=cell.service,
        unit=cell.unit,
        seed=cell.seed,
        error_type=type(error).__name__,
        message=str(error),
        traceback_tail="\n".join(tail),
    )


@dataclass
class CellResult:
    """One cell's payload plus its wall-clock cost and cache provenance.

    ``cached`` is ``True`` when the payload was served from a
    :class:`~repro.core.store.ResultStore` rather than computed;
    ``wall_seconds`` then still reports the *original* compute time.
    ``failure`` is set (and ``payload`` is ``None``) when the cell's
    experiment raised; ``trace`` carries the cell's flight-record document
    when the campaign ran with tracing on.
    """

    cell: CampaignCell
    payload: Any
    wall_seconds: float
    cached: bool = False
    failure: Optional[CellFailure] = None
    trace: Optional[dict] = None

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def rows(self) -> List[dict]:
        """This cell's result rendered as flat report rows (empty on failure)."""
        if self.failure is not None:
            return []
        spec = _spec(self.cell.stage)
        container = spec.empty(self.payload)
        spec.fold(container, self.cell, self.payload)
        return container.rows()


def run_cell(cell: CampaignCell, trace: bool = False) -> CellResult:
    """Execute one campaign cell on a fresh testbed and time it.

    An unknown stage still raises (a malformed *plan* is a caller bug); an
    exception from the experiment itself becomes a :class:`CellFailure` on
    the returned result, so a pool worker's death carries its cell context
    back to the parent instead of a bare re-raise.  With ``trace`` on, the
    cell runs under a fresh recording tracer and the result carries its
    flight-record document.
    """
    spec = _spec(cell.stage)
    tracer = Tracer(label=cell.key) if trace else NULL_TRACER
    started = time.perf_counter()
    payload = None
    failure: Optional[CellFailure] = None
    with activate(tracer):
        try:
            payload = spec.run(cell)
        except Exception as error:
            failure = _failure_for(cell, error)
    wall_seconds = time.perf_counter() - started
    record = None
    if trace:
        tracer.record_wall("cell.run", 0.0, tracer.wall_now(), key=cell.key)
        record = cell_flight_record(tracer, cell, failure=failure.to_dict() if failure is not None else None)
    return CellResult(cell=cell, payload=payload, wall_seconds=wall_seconds, failure=failure, trace=record)


def worker_service_payload(cells: Sequence[CampaignCell]) -> List[dict]:
    """The registry state a worker pool needs to run ``cells``.

    Pass the result as ``initargs`` with :func:`init_worker_services` as the
    pool ``initializer``: services registered at runtime (``--services-file``,
    ablation factories) then exist in every worker even under the
    ``spawn``/``forkserver`` start methods, where workers do not inherit
    the parent registry.  Under ``fork`` the install is a content-matched
    no-op.
    """
    return registry_sync_payload(cell.service for cell in cells)


def init_worker_services(payload: Sequence[dict]) -> None:
    """Process-pool initializer: install the parent's service registrations."""
    install_registered_specs(payload)


@dataclass
class CampaignResult:
    """Everything one campaign run produces: merged suite + per-cell accounting.

    ``trace`` is the campaign's trace document (cells' flight records plus
    the harness section) when the run was traced, else ``None``.
    """

    suite: "SuiteResult"
    cells: List[CellResult]
    seed: int
    jobs: int
    wall_seconds: float
    trace: Optional[dict] = None

    def timing_rows(self) -> List[dict]:
        """Per-cell wall-clock rows (plan order), for the timing table."""
        return [
            {
                "stage": result.cell.stage,
                "service": result.cell.service,
                "unit": result.cell.unit,
                "wall_s": round(result.wall_seconds, 3),
                "cached": "yes" if result.cached else "no",
                "error": result.failure.error_type if result.failure is not None else "-",
            }
            for result in self.cells
        ]

    def failures(self) -> List[CellFailure]:
        """Every failed cell's context record, plan order."""
        return [result.failure for result in self.cells if result.failure is not None]

    def cpu_seconds(self) -> float:
        """Sum of per-cell wall clocks: the sequential-equivalent runtime."""
        return sum(result.wall_seconds for result in self.cells)

    def cache_hits(self) -> int:
        """Number of cells served from the result store."""
        return sum(1 for result in self.cells if result.cached)

    def cache_misses(self) -> int:
        """Number of cells actually computed this run."""
        return sum(1 for result in self.cells if not result.cached)

    def results_json_dict(self) -> dict:
        """The deterministic results document for this campaign.

        See :func:`results_document`; this is what ``--json`` writes.
        """
        return results_document(self.cells, seed=self.seed)

    def to_json_dict(self) -> dict:
        """Machine-readable campaign *execution* record: rows plus timings.

        Unlike :meth:`results_json_dict` this includes run-specific fields
        (wall clocks, worker count, cache hits), so two executions of the
        same campaign generally serialize differently.
        """
        return {
            "seed": self.seed,
            "jobs": self.jobs,
            "stages": sorted({result.cell.stage for result in self.cells}, key=STAGES.index),
            "services": list(dict.fromkeys(result.cell.service for result in self.cells)),
            "wall_seconds": round(self.wall_seconds, 3),
            "cell_cpu_seconds": round(self.cpu_seconds(), 3),
            "cache": {"hits": self.cache_hits(), "misses": self.cache_misses()},
            "cells": [
                {
                    "stage": result.cell.stage,
                    "service": result.cell.service,
                    "unit": result.cell.unit,
                    "cached": result.cached,
                    "wall_seconds": round(result.wall_seconds, 3),
                    "error": result.failure.to_dict() if result.failure is not None else None,
                    "rows": result.rows(),
                }
                for result in self.cells
            ],
        }


# --------------------------------------------------------------------------- #
# Planning, fan-out and merging
# --------------------------------------------------------------------------- #
class CampaignRunner:
    """Plan the (stage, service, unit) grid, fan it out and merge the results."""

    def __init__(
        self,
        services: Optional[Sequence[str]] = None,
        stages: Optional[Sequence[str]] = None,
        *,
        seed: int = DEFAULT_SEED,
        seeds: Optional[Sequence[int]] = None,
        jobs: Optional[int] = None,
        config: Optional[CampaignConfig] = None,
        store: Optional[ResultStore] = None,
        trace: bool = False,
    ) -> None:
        self.services = list(services) if services is not None else list(SERVICE_NAMES)
        wanted = list(stages) if stages is not None else list(STAGES)
        unknown = [stage for stage in wanted if stage not in STAGES]
        if unknown:
            raise ConfigurationError(
                f"unknown stage(s): {', '.join(sorted(unknown))}; valid stages: {', '.join(STAGES)}"
            )
        # Deduplicate while keeping the canonical stage order.
        self.stages = [stage for stage in STAGES if stage in wanted]
        self.jobs = max(1, jobs if jobs is not None else default_jobs())
        # ``seeds`` turns the campaign into a sweep: the same grid is
        # planned once per seed.  The list is deduplicated and sorted so a
        # sweep's plan — and therefore every downstream artifact — is
        # independent of the order the seeds were spelled in.
        if seeds is not None:
            self.seeds = sorted(dict.fromkeys(int(value) for value in seeds))
            if not self.seeds:
                raise ConfigurationError("a seed sweep needs at least one seed")
        else:
            self.seeds = [seed]
        self.seed = self.seeds[0]
        self.config = config if config is not None else CampaignConfig()
        self.store = store
        # Tracing: each cell gets its own recording tracer inside run_cell
        # (possibly in a worker process); this harness tracer collects the
        # parent-side wall spans and store/claim metrics.
        self.trace = trace
        self.tracer = Tracer(label="harness") if trace else NULL_TRACER

    def cells(self) -> List[CampaignCell]:
        """The sweep plan: one cell per (stage, service, unit, seed), seed-major.

        The plan is the concatenation of one per-seed grid per sweep seed
        (ascending seed order), each grid stage-major exactly as before —
        so a single-seed campaign plans the identical cell list it always
        did, and a sweep's per-seed slices each reproduce the single-seed
        plan.  Every cell carries its sweep seed undiluted; the per-cell
        random streams are nevertheless independent because each experiment
        derives them from ``(seed, service, ...)`` labels.  A single-stage,
        single-seed campaign therefore reproduces the standalone experiment
        (and the standalone CLI subcommand) bit-for-bit.  Within one
        (stage, service), units appear in the stage's canonical order, so
        folding in plan order reproduces the sequential run order exactly.
        """
        plan: List[CampaignCell] = []
        for seed in self.seeds:
            for stage in self.stages:
                spec = _spec(stage)
                units = spec.units(self.config)
                for service in self._stage_services(stage):
                    for unit in units:
                        plan.append(
                            CampaignCell(stage=stage, service=service, seed=seed, unit=unit, config=self.config)
                        )
        return plan

    def _stage_services(self, stage: str) -> List[str]:
        if stage == "syn_series":
            return syn_series_services(self.services)
        return list(self.services)

    def run(self, cells: Optional[Sequence[CampaignCell]] = None) -> CampaignResult:
        """Execute every cell (in parallel for ``jobs > 1``) and merge.

        With a result store attached, cells already in the store are loaded
        instead of dispatched, and freshly computed cells are persisted *as
        they complete* — so an interrupted campaign loses at most the cells
        still in flight and ``--resume`` picks up from the survivors.

        ``cells`` restricts execution to an explicit subset of the plan (in
        the order given) — this is how a shard worker (:mod:`repro.dist`)
        runs just its own slice of the grid against the shared store; the
        merged suite then covers only those cells.  For a multi-seed sweep
        prefer :meth:`run_sweep`, which keeps the per-seed results apart;
        ``run()`` folds whatever cells it executed into one suite.
        """
        plan = list(cells) if cells is not None else self.cells()
        started = time.perf_counter()
        completed = self._execute(plan)
        return CampaignResult(
            suite=merge_cell_results(completed),
            cells=completed,
            seed=self.seed,
            jobs=self.jobs,
            wall_seconds=time.perf_counter() - started,
            trace=self.trace_document(completed),
        )

    def run_sweep(self) -> "SweepResult":
        """Execute the full seed-expanded plan and group results per seed.

        Every cell — across all sweep seeds — goes through the same store
        consultation and process pool as :meth:`run`, so cache resume and
        ``--jobs`` parallelism span the whole sweep; the completed cells
        are then grouped into one :class:`~repro.core.campaign.CampaignResult`
        per seed and reduced into a :class:`~repro.core.sweep.SweepResult`.
        """
        from repro.core.sweep import sweep_from_results  # circular-free: sweep builds on this module

        started = time.perf_counter()
        completed = self._execute(self.cells())
        sweep = sweep_from_results(
            completed,
            seeds=self.seeds,
            jobs=self.jobs,
            wall_seconds=time.perf_counter() - started,
        )
        sweep.trace = self.trace_document(completed)
        return sweep

    def run_cells(self, cells: Sequence[CampaignCell]) -> List[CellResult]:
        """Execute the given cells and return the results, without merging.

        Same store-aware, parallel execution as :meth:`run`, but no
        :class:`SuiteResult` fold — shard workers (:mod:`repro.dist`) use
        this for their slice, whose cells may span several sweep seeds and
        therefore have no meaningful single merged suite.
        """
        return self._execute(list(cells))

    def _execute(self, plan: Sequence[CampaignCell]) -> List[CellResult]:
        """Run the given cells (store-aware, possibly in parallel), plan order."""
        results: List[Optional[CellResult]] = [None] * len(plan)
        pending: List[int] = []
        with activate(self.tracer):
            with self.tracer.wall_span("campaign.store_prepass", cells=len(plan)):
                for index, cell in enumerate(plan):
                    hit = self.store.load(cell) if self.store is not None else None
                    if hit is not None:
                        results[index] = hit
                    else:
                        pending.append(index)
            with self.tracer.wall_span("campaign.dispatch", pending=len(pending), jobs=self.jobs):
                # The extra argument only appears when tracing: the common
                # untraced call keeps run_cell's one-argument shape (stable
                # for test doubles and third-party wrappers).
                cell_args = (True,) if self.trace else ()
                if self.jobs == 1 or len(pending) <= 1:
                    for index in pending:
                        results[index] = self._completed(run_cell(plan[index], *cell_args))
                else:
                    with ProcessPoolExecutor(
                        max_workers=min(self.jobs, len(pending)),
                        initializer=init_worker_services,
                        initargs=(worker_service_payload([plan[index] for index in pending]),),
                    ) as pool:
                        futures = {pool.submit(run_cell, plan[index], *cell_args): index for index in pending}
                        # Persist in completion order (resume granularity); results
                        # land by plan index, so merging stays in plan order.
                        for future in as_completed(futures):
                            results[futures[future]] = self._completed(future.result())
        return [result for result in results if result is not None]

    def _completed(self, result: CellResult) -> CellResult:
        # Failed cells are never persisted: the store caches *pure payloads*,
        # and a failure is run-specific, not a function of the cell identity.
        if self.store is not None and result.failure is None:
            self.store.save(result)
        return result

    def trace_document(self, results: Sequence[CellResult]) -> Optional[dict]:
        """The campaign trace document for ``results``, or ``None`` untraced."""
        if not self.trace:
            return None
        records = [result.trace for result in results if result.trace is not None]
        return campaign_trace_document(records, harness=harness_record(self.tracer))


def merge_cell_results(results: Sequence[CellResult]) -> "SuiteResult":
    """Fold per-cell payloads back into the sequential-era ``SuiteResult``.

    ``results`` must be in plan order (stage-major, services in campaign
    order, units in stage order); the merged per-stage containers then list
    services and rows exactly as the old sequential loops did — regardless
    of whether each payload was computed this run or loaded from the store.
    """
    from repro.core.runner import SuiteResult  # local import: runner builds on this module

    suite = SuiteResult()
    for result in results:
        if result.failure is not None:
            continue  # a failed cell has no payload to fold
        spec = _spec(result.cell.stage)
        container = getattr(suite, spec.name)
        if container is None:
            container = spec.empty(result.payload)
            setattr(suite, spec.name, container)
        spec.fold(container, result.cell, result.payload)
    return suite


def results_document(results: Sequence[CellResult], *, seed: int) -> dict:
    """Deterministic, machine-readable results for a sequence of cell results.

    The document is a pure function of the cell identities and payloads —
    no wall clocks, worker counts or cache provenance — so any two
    executions of the same (plan, seed, config), sequential, parallel or
    sharded across machines and merged from the store, produce the same
    document byte for byte.  ``results`` must be in plan order; failed
    cells (run-specific by nature, never cached) are excluded.
    """
    results = [result for result in results if result.failure is None]
    return {
        "schema": RESULTS_DOC_VERSION,
        "seed": seed,
        "stages": sorted({result.cell.stage for result in results}, key=STAGES.index),
        "services": list(dict.fromkeys(result.cell.service for result in results)),
        "cells": [
            {
                "stage": result.cell.stage,
                "service": result.cell.service,
                "unit": result.cell.unit,
                "rows": result.rows(),
            }
            for result in results
        ],
    }


def suite_stage_rows(suite: "SuiteResult") -> Dict[str, List[dict]]:
    """Flat report rows for every completed stage, keyed by stage name."""
    rows: Dict[str, List[dict]] = {}
    for stage in STAGES:
        container = getattr(suite, stage)
        if container is not None:
            rows[stage] = container.rows()
    return rows
