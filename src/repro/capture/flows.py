"""TCP flow reconstruction from packet traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.netsim.packet import Packet, PacketDirection, TCPFlags
from repro.capture.trace import PacketTrace

__all__ = ["FlowKey", "Flow", "FlowTable", "build_flow_table"]


@dataclass(frozen=True)
class FlowKey:
    """Canonical bidirectional 5-tuple identifying one TCP connection.

    The tuple is normalised so that both directions of a connection map to
    the same key: the client (test computer) side is always first.
    """

    client_ip: str
    client_port: int
    server_ip: str
    server_port: int
    protocol: str = "TCP"

    @classmethod
    def from_packet(cls, packet: Packet) -> "FlowKey":
        """Build the canonical key for ``packet`` based on its direction."""
        if packet.direction is PacketDirection.OUT:
            return cls(packet.src, packet.src_port, packet.dst, packet.dst_port, packet.protocol)
        return cls(packet.dst, packet.dst_port, packet.src, packet.src_port, packet.protocol)


@dataclass
class Flow:
    """Aggregate statistics for one TCP connection observed in a trace."""

    key: FlowKey
    hostname: str = ""
    first_packet: float = 0.0
    last_packet: float = 0.0
    first_payload: Optional[float] = None
    last_payload: Optional[float] = None
    packets: int = 0
    syn_packets: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    payload_up: int = 0
    payload_down: int = 0
    connection_ids: set = field(default_factory=set)

    @property
    def total_bytes(self) -> int:
        """Total wire bytes in both directions."""
        return self.bytes_up + self.bytes_down

    @property
    def total_payload(self) -> int:
        """Total payload bytes in both directions."""
        return self.payload_up + self.payload_down

    @property
    def duration(self) -> float:
        """Time between first and last packet of the flow."""
        return self.last_packet - self.first_packet

    def add(self, packet: Packet) -> None:
        """Fold one packet into the flow statistics."""
        if self.packets == 0:
            self.first_packet = packet.timestamp
            self.last_packet = packet.timestamp
            self.hostname = packet.hostname
        self.packets += 1
        self.first_packet = min(self.first_packet, packet.timestamp)
        self.last_packet = max(self.last_packet, packet.timestamp)
        if packet.is_syn:
            self.syn_packets += 1
        if packet.direction is PacketDirection.OUT:
            self.bytes_up += packet.wire_len
            self.payload_up += packet.payload_len
        else:
            self.bytes_down += packet.wire_len
            self.payload_down += packet.payload_len
        if packet.has_payload:
            if self.first_payload is None or packet.timestamp < self.first_payload:
                self.first_payload = packet.timestamp
            if self.last_payload is None or packet.timestamp > self.last_payload:
                self.last_payload = packet.timestamp
        self.connection_ids.add(packet.connection_id)


class FlowTable:
    """All flows reconstructed from one trace, with simple query helpers."""

    def __init__(self) -> None:
        self._flows: Dict[FlowKey, Flow] = {}

    def add_packet(self, packet: Packet) -> None:
        """Route one packet to its flow, creating the flow if needed."""
        key = FlowKey.from_packet(packet)
        flow = self._flows.get(key)
        if flow is None:
            flow = Flow(key=key)
            self._flows[key] = flow
        flow.add(packet)

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self):
        return iter(self.flows())

    def flows(self) -> List[Flow]:
        """All flows ordered by first packet time."""
        return sorted(self._flows.values(), key=lambda flow: flow.first_packet)

    def flows_to_hosts(self, hostnames: Iterable[str]) -> List[Flow]:
        """Flows whose server DNS name is in ``hostnames``."""
        wanted = set(hostnames)
        return [flow for flow in self.flows() if flow.hostname in wanted]

    def largest_flow(self) -> Optional[Flow]:
        """The flow carrying the most bytes (used to spot storage flows)."""
        if not self._flows:
            return None
        return max(self._flows.values(), key=lambda flow: flow.total_bytes)


def build_flow_table(trace: PacketTrace) -> FlowTable:
    """Reconstruct the flow table of ``trace``."""
    table = FlowTable()
    for packet in trace:
        table.add_packet(packet)
    return table
