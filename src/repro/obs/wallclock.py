"""The observability layer's sanctioned wall-clock home.

DET003 bans wall clocks from library code because a timestamp that leaks
into a results document breaks byte-identity across runs.  Observability
is one of the few places a real timestamp is the *point*: a flight
record's wall half says when the harness actually ran, exactly as
``repro.perf.environment`` stamps the benchmark document.  That wall half
is stripped by :func:`repro.obs.recorder.strip_wall` before any
determinism comparison, so the clock can never contaminate a diffed
artifact.

This module is the only file in ``repro/obs`` allowed to touch
``datetime.now`` / ``time.time`` (see ``WallClockRule.allowlist`` in
``repro.analysis.rules.det``); everything else in the layer uses
``time.perf_counter`` offsets, which DET003 permits everywhere.
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Dict

__all__ = ["wall_context"]


def wall_context() -> Dict[str, object]:
    """Run-specific context for the wall half of a trace document."""
    return {
        "timestamp_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    }
