"""Tests for packet traces, the sniffer and flow reconstruction."""

from __future__ import annotations

import pytest

from repro.capture.flows import FlowKey, build_flow_table
from repro.capture.sniffer import Sniffer
from repro.capture.trace import PacketTrace
from repro.netsim.packet import Packet, PacketDirection, TCPFlags


def make_packet(timestamp, direction=PacketDirection.OUT, payload=0, hostname="server.example.com", connection_id=1, flags=TCPFlags.ACK):
    src, dst = ("203.0.113.10", "192.0.2.10") if direction is PacketDirection.OUT else ("192.0.2.10", "203.0.113.10")
    sport, dport = (50_000, 443) if direction is PacketDirection.OUT else (443, 50_000)
    return Packet(
        timestamp=timestamp,
        src=src,
        dst=dst,
        src_port=sport,
        dst_port=dport,
        direction=direction,
        flags=flags,
        payload_len=payload,
        connection_id=connection_id,
        hostname=hostname,
    )


class TestPacketTrace:
    def test_packets_sorted_by_timestamp(self):
        trace = PacketTrace([make_packet(2.0), make_packet(1.0), make_packet(3.0)])
        assert [packet.timestamp for packet in trace] == [1.0, 2.0, 3.0]

    def test_filters(self):
        trace = PacketTrace(
            [
                make_packet(1.0, payload=100, hostname="a.example"),
                make_packet(2.0, payload=0, hostname="b.example"),
                make_packet(3.0, direction=PacketDirection.IN, payload=50, hostname="a.example"),
            ]
        )
        assert len(trace.to_hosts(["a.example"])) == 2
        assert len(trace.payload_packets()) == 2
        assert len(trace.outgoing()) == 2
        assert len(trace.incoming()) == 1
        assert len(trace.between(1.5, 2.5)) == 1
        assert len(trace.after(2.0)) == 2

    def test_aggregates(self):
        trace = PacketTrace(
            [
                make_packet(1.0, payload=100),
                make_packet(2.0, direction=PacketDirection.IN, payload=40),
            ]
        )
        assert trace.uploaded_payload_bytes() == 100
        assert trace.downloaded_payload_bytes() == 40
        assert trace.payload_bytes() == 140
        assert trace.total_bytes() == 140 + 2 * 40
        assert trace.duration() == pytest.approx(1.0)

    def test_empty_trace_properties(self):
        trace = PacketTrace()
        assert trace.is_empty()
        assert trace.first_timestamp() is None
        assert trace.last_timestamp() is None
        assert trace.duration() == 0.0
        assert trace.total_bytes() == 0

    def test_hostnames_and_connections(self):
        trace = PacketTrace([make_packet(1.0, hostname="x"), make_packet(2.0, hostname="y", connection_id=7)])
        assert trace.hostnames() == ["x", "y"]
        assert trace.connection_ids() == [1, 7]


class TestSniffer:
    def test_pause_and_resume(self, simulator, server_endpoint, fast_path):
        sniffer = Sniffer(simulator)
        sniffer.pause()
        simulator.open_connection(server_endpoint, fast_path)
        assert sniffer.trace.is_empty()
        sniffer.resume()
        simulator.open_connection(server_endpoint, fast_path)
        assert not sniffer.trace.is_empty()

    def test_marks(self, simulator):
        sniffer = Sniffer(simulator)
        simulator.run_for(3.0)
        sniffer.mark_now("files-modified")
        assert sniffer.get_mark("files-modified") == pytest.approx(3.0)
        assert sniffer.get_mark("missing") is None

    def test_reset_drops_trace_and_marks(self, simulator, server_endpoint, fast_path):
        sniffer = Sniffer(simulator)
        simulator.open_connection(server_endpoint, fast_path)
        sniffer.mark("m", 1.0)
        sniffer.reset()
        assert sniffer.trace.is_empty()
        assert sniffer.marks == {}


class TestFlows:
    def test_flow_key_is_direction_invariant(self):
        outbound = make_packet(1.0, direction=PacketDirection.OUT)
        inbound = make_packet(2.0, direction=PacketDirection.IN)
        assert FlowKey.from_packet(outbound) == FlowKey.from_packet(inbound)

    def test_flow_statistics(self):
        trace = PacketTrace(
            [
                make_packet(1.0, flags=TCPFlags.SYN),
                make_packet(1.1, payload=500),
                make_packet(1.2, direction=PacketDirection.IN, payload=100),
            ]
        )
        table = build_flow_table(trace)
        assert len(table) == 1
        flow = table.flows()[0]
        assert flow.packets == 3
        assert flow.syn_packets == 1
        assert flow.payload_up == 500
        assert flow.payload_down == 100
        assert flow.duration == pytest.approx(0.2)
        assert flow.first_payload == pytest.approx(1.1)

    def test_flows_to_hosts_and_largest(self):
        trace = PacketTrace(
            [
                make_packet(1.0, payload=100, hostname="control.example", connection_id=1),
                make_packet(2.0, payload=90_000, hostname="storage.example", connection_id=2),
            ]
        )
        # Different connection ids map to different ports in the real capture;
        # here the same 5-tuple is reused, so force distinct ports.
        packets = list(trace)
        table = build_flow_table(PacketTrace([packets[0]]))
        assert table.flows_to_hosts(["control.example"])[0].hostname == "control.example"

    def test_largest_flow_identifies_storage(self, simulator, server_endpoint, fast_path):
        sniffer = Sniffer(simulator)
        connection = simulator.open_connection(server_endpoint, fast_path)
        connection.send(500_000)
        table = build_flow_table(sniffer.trace)
        assert table.largest_flow() is not None
        assert table.largest_flow().payload_up >= 500_000
