"""Tests for the benchmark suite runner and the command line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.runner import BenchmarkSuite, SuiteResult
from repro.errors import ConfigurationError


class TestBenchmarkSuite:
    @pytest.fixture(scope="class")
    def small_suite(self):
        return BenchmarkSuite(["dropbox", "googledrive"], repetitions=1, idle_duration=120.0, resolver_count=100)

    def test_selected_stages_only(self, small_suite):
        result = small_suite.run(stages=["syn_series", "idle"])
        assert result.syn_series is not None
        assert result.idle is not None
        assert result.performance is None
        assert result.capabilities is None

    def test_summary_text_mentions_artifacts(self, small_suite):
        result = small_suite.run(stages=["idle"])
        text = result.summary_text()
        assert "Fig. 1" in text
        assert "dropbox" in text

    def test_empty_result_summary(self):
        assert SuiteResult().summary_text() == ""

    def test_performance_stage_produces_figure6_series(self, small_suite):
        result = small_suite.run(stages=["performance"])
        series = result.performance.figure_series("completion")
        assert set(series) == {"dropbox", "googledrive"}
        text = result.summary_text()
        assert "Fig. 6b" in text

    def test_misspelled_stage_raises_instead_of_running_nothing(self, small_suite):
        # Regression: run(stages=["preformance"]) used to silently run no
        # stage at all and return an empty SuiteResult.
        with pytest.raises(ConfigurationError) as excinfo:
            small_suite.run(stages=["preformance"])
        assert "performance" in str(excinfo.value)  # the valid names are listed

    def test_run_accepts_jobs_parameter(self, small_suite):
        sequential = small_suite.run(stages=["idle"], jobs=1)
        parallel = small_suite.run(stages=["idle"], jobs=2)
        assert sequential.idle.rows() == parallel.idle.rows()


class TestCLI:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "capabilities", "idle", "datacenters", "connections", "delta",
            "compression", "performance", "all", "shard", "merge", "cache",
        ):
            assert command in text

    def test_main_rejects_unknown_service(self):
        with pytest.raises(SystemExit):
            main(["--services", "icloud", "idle"])

    def test_connections_command_prints_table(self, capsys):
        exit_code = main(["--services", "googledrive", "connections"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 3" in captured
        assert "googledrive" in captured

    def test_idle_command_with_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "idle.csv"
        exit_code = main(["--services", "wuala", "--csv", str(csv_path), "idle", "--minutes", "2"])
        assert exit_code == 0
        content = csv_path.read_text()
        assert content.splitlines()[0].startswith("service,")
        assert "wuala" in content
        assert "CSV written" in capsys.readouterr().out

    def test_performance_command_small_run(self, capsys):
        exit_code = main(["--services", "wuala", "performance", "--repetitions", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 6a" in captured and "Fig. 6c" in captured

    def test_all_command_writes_one_csv_per_stage(self, tmp_path, capsys):
        # Regression: `cloudbench all --csv` used to write only the
        # performance rows; now every completed stage gets its own CSV.
        csv_path = tmp_path / "results.csv"
        exit_code = main(
            [
                "--services", "googledrive", "--csv", str(csv_path),
                "all", "--stages", "idle,performance", "--minutes", "1", "--repetitions", "1", "--jobs", "1",
            ]
        )
        assert exit_code == 0
        idle_csv = tmp_path / "results.idle.csv"
        performance_csv = tmp_path / "results.performance.csv"
        assert idle_csv.exists() and performance_csv.exists()
        assert idle_csv.read_text().splitlines()[0].startswith("service,")
        assert "googledrive" in performance_csv.read_text()
        out = capsys.readouterr().out
        assert str(idle_csv) in out and str(performance_csv) in out

    def test_all_command_emits_timing_and_json(self, tmp_path, capsys):
        json_path = tmp_path / "campaign.json"
        timings_path = tmp_path / "timings.json"
        exit_code = main(
            [
                "--services", "googledrive", "--seed", "3",
                "all", "--stages", "idle", "--minutes", "1", "--jobs", "1",
                "--json", str(json_path), "--timings-json", str(timings_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Campaign timing (jobs=1)" in out
        assert "total wall-clock" in out
        # --json is the deterministic results document: no wall clocks,
        # worker counts or cache fields — those live in --timings-json.
        payload = json.loads(json_path.read_text())
        assert payload["seed"] == 3 and "jobs" not in payload
        assert [cell["stage"] for cell in payload["cells"]] == ["idle"]
        assert payload["cells"][0]["rows"][0]["service"] == "googledrive"
        assert "wall_seconds" not in payload["cells"][0]
        timings = json.loads(timings_path.read_text())
        assert timings["jobs"] == 1 and timings["cache"] == {"hits": 0, "misses": 1}
        assert timings["cells"][0]["wall_seconds"] >= 0

    def test_all_command_json_is_byte_identical_across_jobs(self, tmp_path):
        first = tmp_path / "jobs1.json"
        second = tmp_path / "jobs2.json"
        argv = ["--services", "googledrive", "--seed", "3", "all", "--stages", "idle,performance",
                "--minutes", "1", "--repetitions", "1"]
        assert main(argv + ["--jobs", "1", "--json", str(first)]) == 0
        assert main(argv + ["--jobs", "2", "--json", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_all_command_rejects_unknown_stage(self):
        with pytest.raises(SystemExit):
            main(["--services", "googledrive", "all", "--stages", "preformance"])

    def test_all_command_rejects_empty_stages_value(self):
        # Regression: `--stages " , "` used to plan a zero-cell campaign
        # and exit 0 with an empty summary instead of erroring.
        with pytest.raises(SystemExit):
            main(["--services", "googledrive", "all", "--stages", " , "])

    def test_idle_and_datacenters_accept_seed(self, capsys):
        # Regression: only capabilities/connections/delta/compression/
        # performance used to honor --seed; now every subcommand constructs
        # the same experiment identity as its campaign cell.
        assert main(["--services", "wuala", "--seed", "7", "idle", "--minutes", "1"]) == 0
        assert "wuala" in capsys.readouterr().out
        assert main(["--services", "wuala", "--seed", "7", "datacenters", "--resolvers", "50"]) == 0
        assert "wuala" in capsys.readouterr().out

    def test_all_command_timing_table_has_unit_rows(self, capsys):
        exit_code = main(
            ["--services", "googledrive", "all", "--stages", "performance", "--repetitions", "1", "--jobs", "1"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "unit" in out
        for workload in ("1x100kB", "1x1MB", "10x100kB", "100x10kB"):
            assert workload in out

    def test_all_command_cache_dir_second_run_all_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        json_first = tmp_path / "first.json"
        json_second = tmp_path / "second.json"
        argv = [
            "--services", "googledrive", "--seed", "11",
            "all", "--stages", "idle,performance", "--minutes", "1", "--repetitions", "1",
            "--jobs", "1", "--cache-dir", cache_dir,
        ]
        assert main(argv + ["--json", str(json_first)]) == 0
        first_out = capsys.readouterr().out
        assert "result store" in first_out and "0 hits" in first_out
        assert main(argv + ["--json", str(json_second)]) == 0
        second_out = capsys.readouterr().out
        assert "5 hits, 0 misses (100% cached)" in second_out

        # The summary (everything before the timing table) is byte-identical.
        marker = "Campaign timing"
        assert first_out.split(marker)[0] == second_out.split(marker)[0]

        # The deterministic results document is byte-identical: a fully
        # cache-served re-run serializes exactly as the computing run did.
        assert json_first.read_bytes() == json_second.read_bytes()

    def test_all_command_resume_defaults_cache_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = ["--services", "googledrive", "all", "--stages", "idle", "--minutes", "1", "--jobs", "1", "--resume"]
        assert main(argv) == 0
        assert "result store .cloudbench-cache" in capsys.readouterr().out
        assert (tmp_path / ".cloudbench-cache" / "idle").is_dir()
        assert main(argv) == 0
        assert "1 hits, 0 misses" in capsys.readouterr().out


class TestDistributedCLI:
    CAMPAIGN = ["--stages", "idle,performance", "--minutes", "1", "--repetitions", "1"]

    def sequential_json(self, tmp_path, *, services="dropbox,googledrive", seed="13"):
        path = tmp_path / "sequential.json"
        argv = ["--services", services, "--seed", seed, "all", *self.CAMPAIGN, "--jobs", "1", "--json", str(path)]
        assert main(argv) == 0
        return path

    def test_two_static_shard_workers_merge_byte_identical(self, tmp_path, capsys):
        sequential = self.sequential_json(tmp_path)
        store = str(tmp_path / "store")
        base = ["--services", "dropbox,googledrive", "--seed", "13"]
        assert main(base + ["shard", *self.CAMPAIGN, "--store", store, "--shard", "1/2", "--jobs", "1", "--runner-id", "w1"]) == 0
        assert main(base + ["shard", *self.CAMPAIGN, "--store", store, "--shard", "2/2", "--jobs", "1", "--runner-id", "w2"]) == 0
        out = capsys.readouterr().out
        assert "Shard worker w1 (shard 1/2)" in out and "Shard worker w2 (shard 2/2)" in out
        merged = tmp_path / "merged.json"
        assert main(base + ["merge", *self.CAMPAIGN, "--store", store, "--json", str(merged)]) == 0
        merge_out = capsys.readouterr().out
        assert "Per-runner accounting" in merge_out
        assert "w1" in merge_out and "w2" in merge_out
        assert merged.read_bytes() == sequential.read_bytes()

    def test_two_steal_workers_merge_byte_identical(self, tmp_path, capsys):
        sequential = self.sequential_json(tmp_path)
        store = str(tmp_path / "store")
        base = ["--services", "dropbox,googledrive", "--seed", "13"]
        for runner_id in ("s1", "s2"):
            argv = base + ["shard", *self.CAMPAIGN, "--store", store, "--steal", "--jobs", "1", "--runner-id", runner_id]
            assert main(argv) == 0
        capsys.readouterr()
        merged = tmp_path / "merged.json"
        assert main(base + ["merge", *self.CAMPAIGN, "--store", store, "--json", str(merged)]) == 0
        assert merged.read_bytes() == sequential.read_bytes()

    def test_merge_fails_fast_on_incomplete_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        base = ["--services", "dropbox,googledrive", "--seed", "13"]
        assert main(base + ["shard", *self.CAMPAIGN, "--store", store, "--shard", "1/2", "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(base + ["merge", *self.CAMPAIGN, "--store", store]) == 1
        err = capsys.readouterr().err
        assert "missing" in err and "shard workers" in err

    def test_shard_rejects_bad_spec_and_missing_mode(self, tmp_path):
        store = str(tmp_path / "store")
        with pytest.raises(SystemExit):
            main(["shard", "--store", store, "--shard", "3/2"])
        with pytest.raises(SystemExit):
            main(["shard", "--store", store])
        with pytest.raises(SystemExit):
            main(["shard", "--store", store, "--shard", "1/2", "--steal"])

    def test_cache_ls_and_rm(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        base = ["--services", "dropbox,googledrive", "--seed", "13"]
        assert main(base + ["shard", *self.CAMPAIGN, "--store", store, "--steal", "--jobs", "1", "--runner-id", "w1"]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "idle" in out and "performance" in out and "w1" in out and "13" in out
        assert main(["cache", "rm", "--store", store, "--stage", "idle"]) == 0
        assert "removed 2 entries" in capsys.readouterr().out
        assert main(["cache", "ls", "--store", store]) == 0
        assert "idle" not in capsys.readouterr().out.split("Result store")[1]
        assert main(["cache", "rm", "--store", store, "--all"]) == 0
        assert "removed 8 entries" in capsys.readouterr().out
        assert main(["cache", "ls", "--store", store]) == 0
        assert "(no data)" in capsys.readouterr().out

    def test_cache_rm_requires_selector(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "rm", "--store", str(tmp_path / "store")])
        with pytest.raises(SystemExit):
            main(["cache", "rm", "--store", str(tmp_path / "store"), "--all", "--stage", "idle"])
        with pytest.raises(SystemExit):
            main(["cache", "rm", "--store", str(tmp_path / "store"), "--all", "--older-than", "1h"])
        with pytest.raises(SystemExit):
            main(["cache", "rm", "--store", str(tmp_path / "store"), "--schema-foreign", "--stage", "idle"])

    def test_cache_rm_older_than_gc(self, tmp_path, capsys):
        import os
        import time

        store = str(tmp_path / "store")
        base = ["--services", "googledrive", "--seed", "13"]
        assert main(base + ["shard", "--stages", "idle", "--minutes", "1", "--store", store, "--steal", "--jobs", "1"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["cache", "rm", "--store", store, "--older-than", "bogus"])
        assert main(["cache", "rm", "--store", store, "--older-than", "1h"]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        for dirpath, _, filenames in os.walk(store):
            for name in filenames:
                path = os.path.join(dirpath, name)
                aged = time.time() - 7200.0  # repro: disable=DET003 (aging store entries for TTL GC)
                os.utime(path, (aged, aged))
        assert main(["cache", "rm", "--store", store, "--older-than", "1h"]) == 0
        assert "removed 1 entry" in capsys.readouterr().out

    def test_cache_rm_schema_foreign_flag(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        base = ["--services", "googledrive", "--seed", "13"]
        assert main(base + ["shard", "--stages", "idle", "--minutes", "1", "--store", store, "--steal", "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["cache", "rm", "--store", store, "--schema-foreign"]) == 0
        assert "removed 0 entries" in capsys.readouterr().out  # nothing foreign yet

    def test_cache_ls_is_sorted_by_stage_service_unit_seed(self, tmp_path):
        from repro.cli import store_listing_rows
        from repro.core.campaign import CampaignCell, CampaignConfig, run_cell
        from repro.core.store import ResultStore

        config = CampaignConfig(repetitions=1, idle_duration=60.0, resolver_count=50)
        store = ResultStore(str(tmp_path / "store"))
        # Save deliberately out of campaign/service/seed order.
        for stage, service, unit, seed in (
            ("performance", "wuala", "1x1MB", 9),
            ("idle", "dropbox", "-", 9),
            ("performance", "dropbox", "1x100kB", 7),
            ("idle", "dropbox", "-", 7),
        ):
            store.save(run_cell(CampaignCell(stage=stage, service=service, seed=seed, unit=unit, config=config)))
        listed = [(row["stage"], row["service"], row["unit"], row["seed"]) for row in store_listing_rows(store)]
        assert listed == [
            ("idle", "dropbox", "-", 7),
            ("idle", "dropbox", "-", 9),
            ("performance", "dropbox", "1x100kB", 7),
            ("performance", "wuala", "1x1MB", 9),
        ]


class TestSweepCLI:
    SWEEP = ["--stages", "idle,performance", "--minutes", "1", "--repetitions", "1"]

    def test_all_seeds_rejects_bad_spec(self):
        with pytest.raises(SystemExit):
            main(["--services", "googledrive", "all", "--stages", "idle", "--seeds", "5..3"])
        with pytest.raises(SystemExit):
            main(["--services", "googledrive", "all", "--stages", "idle", "--seeds", "a,b"])

    def test_all_multi_seed_prints_aggregates_and_writes_sweep_json(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        argv = ["--services", "googledrive", "all", *self.SWEEP, "--jobs", "1",
                "--seeds", "7,9", "--json", str(json_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Seed sweep — 2 seed(s): 7, 9" in out
        assert "Cross-seed aggregates — performance (n=2)" in out
        assert "sweep wall-clock" in out
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == 3 and payload["seeds"] == [7, 9]
        assert len(payload["per_seed"]) == 2

    def test_all_single_seed_via_seeds_flag_matches_legacy_json(self, tmp_path):
        legacy = tmp_path / "legacy.json"
        swept = tmp_path / "swept.json"
        base = ["--services", "googledrive", "all", *self.SWEEP, "--jobs", "1"]
        assert main(["--seed", "7", *base, "--json", str(legacy)]) == 0
        assert main(base + ["--seeds", "7", "--json", str(swept)]) == 0
        assert legacy.read_bytes() == swept.read_bytes()

    def test_sweep_json_byte_identical_across_jobs_and_seed_order(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        base = ["--services", "googledrive", "all", *self.SWEEP]
        assert main(base + ["--jobs", "1", "--seeds", "7,9", "--json", str(first)]) == 0
        assert main(base + ["--jobs", "2", "--seeds", "9,7", "--json", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_sharded_sweep_merge_byte_identical(self, tmp_path, capsys):
        sequential = tmp_path / "sequential.json"
        base = ["--services", "googledrive"]
        sweep_args = [*self.SWEEP, "--seeds", "7,9"]
        assert main(base + ["all", *sweep_args, "--jobs", "1", "--json", str(sequential)]) == 0
        store = str(tmp_path / "store")
        assert main(base + ["shard", *sweep_args, "--store", store, "--shard", "1/2", "--jobs", "1", "--runner-id", "w1"]) == 0
        assert main(base + ["shard", *sweep_args, "--store", store, "--shard", "2/2", "--jobs", "1", "--runner-id", "w2"]) == 0
        capsys.readouterr()
        merged = tmp_path / "merged.json"
        assert main(base + ["merge", *sweep_args, "--store", store, "--json", str(merged)]) == 0
        merge_out = capsys.readouterr().out
        assert "Seed sweep — 2 seed(s): 7, 9" in merge_out
        assert "Per-runner accounting" in merge_out
        assert merged.read_bytes() == sequential.read_bytes()

    def test_sweep_csv_writes_per_stage_aggregates(self, tmp_path, capsys):
        csv_path = tmp_path / "agg.csv"
        argv = ["--services", "googledrive", "--csv", str(csv_path),
                "all", *self.SWEEP, "--jobs", "1", "--seeds", "7,9"]
        assert main(argv) == 0
        capsys.readouterr()
        performance_csv = tmp_path / "agg.performance.csv"
        assert (tmp_path / "agg.idle.csv").exists() and performance_csv.exists()
        header = performance_csv.read_text().splitlines()[0]
        assert header == "service,unit,row,label,metric,mean,std,ci95,median,q1,q3,iqr,min,max,n"
