"""Static determinism analysis for the benchmark code base.

Every result surface this repository ships — cache keys, results
documents, sweep documents, shard+merge output — is contractually
byte-identical across ``--jobs N``, seed order and worker topology.
This package enforces that contract *statically*: an AST rule engine
(:mod:`~repro.analysis.engine`) with determinism rules
(:mod:`~repro.analysis.rules.det`: unsorted filesystem enumeration,
global RNG use, wall clocks, implicit JSON key order, set iteration),
a cross-file purity rule (:mod:`~repro.analysis.rules.pur`: every
``CampaignConfig`` field must be covered by the store's cache-key
manifest), and a spec-document linter
(:mod:`~repro.analysis.speclint`) that runs declarative
ServiceSpec/ScenarioSpec files through the real runtime loaders.

Entry points: ``cloudbench lint [paths] [--specs FILE]`` and
``python -m repro.analysis``.  The pass runs self-hosted over this
repository's own ``src``, ``tests`` and ``examples/specs`` in CI and
must come up clean; intentional violations carry inline
``# repro: disable=RULE`` suppressions
(:mod:`~repro.analysis.suppressions`).
"""

from repro.analysis.cli import lint_paths, run
from repro.analysis.engine import LintEngine, Rule, SourceModule, collect_targets
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import all_rules, rule_catalogue
from repro.analysis.speclint import lint_spec_file
from repro.analysis.suppressions import scan_suppressions

__all__ = [
    "Finding",
    "LintEngine",
    "Rule",
    "SourceModule",
    "all_rules",
    "collect_targets",
    "lint_paths",
    "lint_spec_file",
    "render_json",
    "render_text",
    "rule_catalogue",
    "run",
    "scan_suppressions",
]
