"""Tests for the open-workload population engine (``repro.load``).

Covers the allocator's conservation/order-invariance properties
(hypothesis), shuffle-bit-identity of the tail reductions, engine sanity
against closed-form expectations, the campaign ``load`` stage (plan
order, caching, sweep aggregation) and end-to-end byte-identity of the
CLI documents across jobs and a 2-worker shard+merge.
"""

from __future__ import annotations

import json
import math
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cli import main, store_listing_rows
from repro.core.campaign import CampaignCell, CampaignConfig, CampaignRunner, run_cell
from repro.core.store import CONFIG_KEY_FIELDS, ResultStore, cache_key
from repro.errors import ConfigurationError
from repro.load import (
    AccessLane,
    LoadParameters,
    SharedLink,
    TailSummary,
    arrival_times,
    diurnal_times,
    group_allocation,
    jain_index,
    max_min_allocation,
    poisson_times,
    run_load_cell,
    simulate_population,
)
from repro.load.edge import ServiceEdge
from repro.netsim.scenario import BASELINE
from repro.randomness import make_rng
from repro.units import (
    format_population,
    mbps,
    parse_population,
    parse_populations,
    unit_sort_key,
)

caps_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=40,
)
capacities = st.floats(min_value=1.0, max_value=1e10, allow_nan=False, allow_infinity=False)


class TestAllocatorProperties:
    @given(caps=caps_lists, capacity=capacities)
    @settings(max_examples=120, deadline=None)
    def test_conserves_bandwidth_and_respects_caps(self, caps, capacity):
        rates = max_min_allocation(caps, capacity)
        assert len(rates) == len(caps)
        # Conservation: allocations never exceed the capacity (beyond
        # float accumulation noise) and each session stays under its cap.
        assert sum(rates) <= capacity * (1.0 + 1e-9) + 1e-9
        for rate, cap in zip(rates, caps):
            assert 0.0 <= rate <= cap * (1.0 + 1e-12) + 1e-12

    @given(caps=caps_lists, capacity=capacities, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=120, deadline=None)
    def test_order_invariant_bit_exact(self, caps, capacity, seed):
        rates = max_min_allocation(caps, capacity)
        order = list(range(len(caps)))
        random.Random(seed).shuffle(order)
        shuffled_rates = max_min_allocation([caps[i] for i in order], capacity)
        # The multiset of allocations is independent of session order —
        # bit for bit, so arrival order can never leak into the results.
        assert sorted(shuffled_rates) == sorted(rates)
        if len(set(caps)) == len(caps):
            # With distinct caps the mapping itself is equivariant too.
            assert [shuffled_rates[order.index(i)] for i in range(len(caps))] == rates

    @given(caps=caps_lists, capacity=capacities)
    @settings(max_examples=80, deadline=None)
    def test_work_conserving_when_demand_exceeds_capacity(self, caps, capacity):
        rates = max_min_allocation(caps, capacity)
        if sum(caps) >= capacity and caps:
            assert sum(rates) == pytest.approx(capacity, rel=1e-9)
        else:
            for rate, cap in zip(rates, caps):
                assert rate == pytest.approx(cap, rel=1e-12, abs=1e-12)

    @given(
        cap=st.floats(min_value=0.1, max_value=1e8, allow_nan=False),
        count=st.integers(min_value=1, max_value=1000),
        capacity=capacities,
    )
    @settings(max_examples=80, deadline=None)
    def test_group_form_matches_flat_allocation(self, cap, count, capacity):
        per_session = group_allocation(((cap, count),), capacity)[0]
        flat = max_min_allocation([cap] * count, capacity)
        # The grouped form hands every member the first member's share in
        # one step; the flat form recomputes shares from a decremented
        # remainder, so later members can drift by an ulp — the grouped
        # rate is pinned to the flat head and the totals agree.
        assert per_session == flat[0]
        assert sum(flat) == pytest.approx(per_session * count, rel=1e-9)

    def test_single_group_is_min_of_cap_and_fair_share(self):
        # The engine inlines this identity; pin it against the allocator.
        link = SharedLink(capacity_bps=mbps(400.0))
        for active in (1, 3, 64, 1000):
            expected = min(mbps(10.0), mbps(400.0) / active)
            assert link.per_session_rate(mbps(10.0), active) == expected

    def test_quantize_up_lands_on_tick_lattice(self):
        link = SharedLink(capacity_bps=1.0, tick_s=0.01)
        assert link.quantize_up(0.0) == 0.0
        assert link.quantize_up(0.010000000000000002) == pytest.approx(0.01)
        assert link.quantize_up(0.0101) == pytest.approx(0.02)
        assert link.quantize_up(1.234) == pytest.approx(1.24, abs=1e-12)


class TestArrivals:
    def test_poisson_schedule_is_sorted_and_deterministic(self):
        first = poisson_times(500, 10.0, make_rng(7, "arrivals"))
        second = poisson_times(500, 10.0, make_rng(7, "arrivals"))
        assert first == second
        assert first == sorted(first)
        assert len(first) == 500

    def test_diurnal_schedule_is_sorted_and_deterministic(self):
        first = diurnal_times(500, 10.0, make_rng(7, "arrivals"), period=60.0)
        second = diurnal_times(500, 10.0, make_rng(7, "arrivals"), period=60.0)
        assert first == second
        assert first == sorted(first)
        assert len(first) == 500

    def test_dispatcher_validates_kind(self):
        with pytest.raises(ValueError):
            arrival_times("bursty", 10, 60.0, make_rng(7))

    def test_mean_rate_tracks_population_over_window(self):
        times = arrival_times("poisson", 5000, 50.0, make_rng(7, "rate"))
        # 5000 arrivals at rate 100/s should span roughly the 50 s window.
        assert times[-1] == pytest.approx(50.0, rel=0.2)


class TestTailReductions:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=200,
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_summary_bit_identical_under_shuffle(self, values, seed):
        shuffled = list(values)
        random.Random(seed).shuffle(shuffled)
        assert TailSummary.from_values(shuffled) == TailSummary.from_values(values)
        assert jain_index(shuffled) == jain_index(values)

    @given(
        values=st.lists(
            st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_jain_bounds(self, values):
        index = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    def test_jain_extremes(self):
        assert jain_index([5.0, 5.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_quantiles_match_metric_aggregate_convention(self):
        from repro.core.metrics import MetricAggregate

        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        summary = TailSummary.from_values(values)
        aggregate = MetricAggregate.from_values(values)
        assert summary.p50 == aggregate.median
        assert summary.mean == pytest.approx(aggregate.mean)
        assert summary.minimum == aggregate.minimum and summary.maximum == aggregate.maximum


class TestServiceEdge:
    def test_fifo_admission_and_peaks(self):
        edge = ServiceEdge(2)
        assert edge.offer(0) and edge.offer(1)
        assert not edge.offer(2) and not edge.offer(3)
        assert edge.queued == 2 and edge.peak_queue == 2 and edge.peak_active == 2
        assert edge.release() == 2
        assert edge.release() == 3
        assert edge.release() is None
        assert edge.release() is None
        with pytest.raises(RuntimeError):
            edge.release()


class TestPopulationEngine:
    LANE = AccessLane(cap_bps=mbps(10.0), rtt=0.030, server_processing=0.015)

    def test_uncontended_session_matches_closed_form(self):
        # One session on an idle 400 Mb/s link: the fluid phase is pure
        # serialization at its own cap, no queueing.
        params = LoadParameters(population=1, window_s=1.0, link_capacity_bps=mbps(400.0))
        result = simulate_population(params, self.LANE, make_rng(7, "solo"))
        assert result.queue_waits == [0.0]
        from repro.netsim.tcp import slow_start_penalty

        size = result.total_bytes
        latency = 3.0 * 0.030 + 0.015 + slow_start_penalty(size, mbps(10.0), 0.030)
        solo = latency + size * 8.0 / mbps(10.0)
        # Completion matches the closed form up to one tick of quantization.
        assert result.completions[0] == pytest.approx(solo, abs=2 * 0.01)

    def test_edge_concurrency_one_serializes(self):
        params = LoadParameters(
            population=20, window_s=0.1, edge_concurrency=1, link_capacity_bps=mbps(400.0)
        )
        result = simulate_population(params, self.LANE, make_rng(7, "serial"))
        assert result.peak_active == 1
        # Everyone after the first waits: with all 20 offered in 100 ms,
        # at least 18 sessions must see a positive queue wait.
        assert sum(1 for wait in result.queue_waits if wait > 0.0) >= 18

    def test_engine_is_deterministic(self):
        params = LoadParameters(population=2000)
        first = simulate_population(params, self.LANE, make_rng(11, "det"))
        second = simulate_population(params, self.LANE, make_rng(11, "det"))
        assert first == second

    def test_saturation_bounds(self):
        # 50k sessions * ~100 kB over 10 s >> 400 Mb/s: the link saturates
        # and utilization approaches (but never exceeds) 1.
        params = LoadParameters(population=50_000, window_s=10.0)
        result = simulate_population(params, self.LANE, make_rng(7, "sat"))
        utilization = result.total_bytes * 8.0 / (result.makespan_s * mbps(400.0))
        assert 0.5 < utilization <= 1.0 + 1e-9
        assert result.peak_active == 64
        summary_waits = TailSummary.from_values(result.queue_waits)
        assert summary_waits.p99 > 1.0

    def test_diurnal_cell_runs(self):
        params = LoadParameters(population=2000, arrival="diurnal")
        result = simulate_population(params, self.LANE, make_rng(7, "diurnal"))
        assert result.sessions == 2000

    def test_rejects_unknown_arrival(self):
        with pytest.raises(ValueError):
            LoadParameters(population=10, arrival="bursty")

    def test_run_load_cell_is_pure(self):
        params = LoadParameters(population=3000)
        first = run_load_cell("dropbox", params, seed=7, scenario=BASELINE)
        second = run_load_cell("dropbox", params, seed=7, scenario=BASELINE)
        assert first == second
        assert first.row()["population"] == "3k"
        assert first != run_load_cell("dropbox", params, seed=8, scenario=BASELINE)
        assert first != run_load_cell("googledrive", params, seed=7, scenario=BASELINE)


class TestPopulationGrammar:
    def test_parse_population(self):
        assert parse_population("1k") == 1000
        assert parse_population("10K") == 10_000
        assert parse_population("1M") == 1_000_000
        assert parse_population("500") == 500
        assert parse_population(2500) == 2500
        for bad in ("", "k", "1.5k", "-3", "0", True):
            with pytest.raises(ConfigurationError):
                parse_population(bad)

    def test_parse_populations_sorts_and_dedupes(self):
        assert parse_populations("1M,10k,1k,10k") == [1000, 10_000, 1_000_000]
        with pytest.raises(ConfigurationError):
            parse_populations(",,")

    def test_format_population_round_trips(self):
        for value in (1, 500, 1000, 2500, 10_000, 100_000, 1_000_000, 3_000_000):
            assert parse_population(format_population(value)) == value
        assert format_population(1_000_000) == "1M"
        assert format_population(100_000) == "100k"

    def test_unit_sort_key_orders_populations_numerically(self):
        labels = ["1M", "100k", "10k", "1k"]
        assert sorted(labels, key=unit_sort_key) == ["1k", "10k", "100k", "1M"]
        # Lexical sorting would interleave: exactly the bug this guards.
        assert sorted(labels) != sorted(labels, key=unit_sort_key)

    def test_unit_sort_key_orders_repetition_units(self):
        labels = ["upload#r10", "upload#r2", "upload#r0", "download#r1"]
        assert sorted(labels, key=unit_sort_key) == [
            "download#r1",
            "upload#r0",
            "upload#r2",
            "upload#r10",
        ]


class TestLoadStage:
    CONFIG = CampaignConfig(load_populations=(1000, 200), load_window=10.0)

    def test_plan_units_sort_numerically_ascending(self):
        runner = CampaignRunner(
            ["dropbox"], ["load"], seed=7,
            config=CampaignConfig(load_populations=(1_000_000, 100_000, 1000, 10_000)),
        )
        assert [cell.unit for cell in runner.cells()] == ["1k", "10k", "100k", "1M"]

    def test_stage_rows_report_tails_and_fairness(self):
        runner = CampaignRunner(["dropbox", "googledrive"], ["load"], seed=7, jobs=1, config=self.CONFIG)
        campaign = runner.run()
        rows = campaign.suite.load.rows()
        assert [(row["service"], row["population"]) for row in rows] == [
            ("dropbox", "200"),
            ("dropbox", "1k"),
            ("googledrive", "200"),
            ("googledrive", "1k"),
        ]
        for row in rows:
            for column in ("completion_p99_s", "completion_p999_s", "queue_p99_s", "jain"):
                assert column in row
            assert 0.0 < row["jain"] <= 1.0

    def test_cache_key_covers_load_parameters(self):
        base = CampaignCell(stage="load", service="dropbox", seed=7, unit="1k", config=CampaignConfig())
        assert cache_key(base) == cache_key(base)  # runtime guard passes
        for variant in (
            CampaignConfig(load_populations=(1000,)),
            CampaignConfig(load_window=30.0),
            CampaignConfig(load_arrival="diurnal"),
            CampaignConfig(load_edge_concurrency=8),
            CampaignConfig(load_link_capacity_bps=mbps(100.0)),
            CampaignConfig(load_transfer_bytes=50_000),
            CampaignConfig(rep_cells=True),
        ):
            cell = CampaignCell(stage="load", service="dropbox", seed=7, unit="1k", config=variant)
            assert cache_key(cell) != cache_key(base)

    def test_config_key_fields_match_dataclass(self):
        import dataclasses

        names = tuple(sorted(field.name for field in dataclasses.fields(CampaignConfig)))
        assert names == CONFIG_KEY_FIELDS

    def test_store_round_trip_and_listing_order(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        config = CampaignConfig(load_populations=(1000, 10_000, 100_000), load_window=5.0)
        for unit in ("1k", "10k", "100k"):
            store.save(
                run_cell(CampaignCell(stage="load", service="dropbox", seed=7, unit=unit, config=config))
            )
        listed = [row["unit"] for row in store_listing_rows(store)]
        assert listed == ["1k", "10k", "100k"]
        cell = CampaignCell(stage="load", service="dropbox", seed=7, unit="10k", config=config)
        hit = store.load(cell)
        assert hit is not None and hit.cached
        assert hit.payload == run_cell(cell).payload

    def test_sweep_aggregates_include_ci95(self):
        runner = CampaignRunner(["dropbox"], ["load"], seeds=[7, 8], jobs=1, config=self.CONFIG)
        sweep = runner.run_sweep()
        rows = sweep.aggregate_rows()["load"]
        assert rows, "load stage must aggregate across seeds"
        for row in rows:
            assert "ci95" in row and row["n"] == 2
        document = sweep.document()
        assert document["schema"] == 3


class TestRepetitionCells:
    def test_rep_cells_plan_and_merged_rows_identical(self):
        coarse = CampaignRunner(
            ["dropbox"], ["performance"], seed=7, jobs=1, config=CampaignConfig(repetitions=2)
        ).run()
        fine = CampaignRunner(
            ["dropbox"], ["performance"], seed=7, jobs=1,
            config=CampaignConfig(repetitions=2, rep_cells=True),
        ).run()
        assert len(fine.cells) == 2 * len(coarse.cells)
        assert {cell.cell.unit.rpartition("#r")[2] for cell in fine.cells} == {"0", "1"}
        assert fine.suite.performance.runs == coarse.suite.performance.runs
        assert fine.suite.performance.rows() == coarse.suite.performance.rows()


class TestLoadCLI:
    ARGS = ["--stages", "load", "--populations", "500,10k", "--seeds", "7,8"]

    def test_json_byte_identical_across_jobs(self, tmp_path, capsys):
        first, second = tmp_path / "j1.json", tmp_path / "j2.json"
        base = ["--services", "dropbox", "all", *self.ARGS]
        assert main(base + ["--jobs", "1", "--json", str(first)]) == 0
        assert main(base + ["--jobs", "2", "--json", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
        payload = json.loads(first.read_text())
        rows = payload["per_seed"][0]["cells"][-1]["rows"]
        assert {row["population"] for row in rows} == {"10k"}

    def test_sharded_merge_byte_identical(self, tmp_path, capsys):
        sequential = tmp_path / "seq.json"
        base = ["--services", "dropbox"]
        assert main(base + ["all", *self.ARGS, "--jobs", "1", "--json", str(sequential)]) == 0
        store = str(tmp_path / "store")
        for shard in ("1/2", "2/2"):
            assert main(base + ["shard", *self.ARGS, "--store", store, "--shard", shard, "--jobs", "1"]) == 0
        merged = tmp_path / "merged.json"
        assert main(base + ["merge", *self.ARGS, "--store", store, "--json", str(merged)]) == 0
        capsys.readouterr()
        assert merged.read_bytes() == sequential.read_bytes()

    def test_rejects_bad_populations(self):
        with pytest.raises(SystemExit):
            main(["--services", "dropbox", "all", "--stages", "load", "--populations", "zero"])
