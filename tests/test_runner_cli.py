"""Tests for the benchmark suite runner and the command line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.runner import BenchmarkSuite, SuiteResult
from repro.errors import ConfigurationError


class TestBenchmarkSuite:
    @pytest.fixture(scope="class")
    def small_suite(self):
        return BenchmarkSuite(["dropbox", "googledrive"], repetitions=1, idle_duration=120.0, resolver_count=100)

    def test_selected_stages_only(self, small_suite):
        result = small_suite.run(stages=["syn_series", "idle"])
        assert result.syn_series is not None
        assert result.idle is not None
        assert result.performance is None
        assert result.capabilities is None

    def test_summary_text_mentions_artifacts(self, small_suite):
        result = small_suite.run(stages=["idle"])
        text = result.summary_text()
        assert "Fig. 1" in text
        assert "dropbox" in text

    def test_empty_result_summary(self):
        assert SuiteResult().summary_text() == ""

    def test_performance_stage_produces_figure6_series(self, small_suite):
        result = small_suite.run(stages=["performance"])
        series = result.performance.figure_series("completion")
        assert set(series) == {"dropbox", "googledrive"}
        text = result.summary_text()
        assert "Fig. 6b" in text

    def test_misspelled_stage_raises_instead_of_running_nothing(self, small_suite):
        # Regression: run(stages=["preformance"]) used to silently run no
        # stage at all and return an empty SuiteResult.
        with pytest.raises(ConfigurationError) as excinfo:
            small_suite.run(stages=["preformance"])
        assert "performance" in str(excinfo.value)  # the valid names are listed

    def test_run_accepts_jobs_parameter(self, small_suite):
        sequential = small_suite.run(stages=["idle"], jobs=1)
        parallel = small_suite.run(stages=["idle"], jobs=2)
        assert sequential.idle.rows() == parallel.idle.rows()


class TestCLI:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("capabilities", "idle", "datacenters", "connections", "delta", "compression", "performance", "all"):
            assert command in text

    def test_main_rejects_unknown_service(self):
        with pytest.raises(SystemExit):
            main(["--services", "icloud", "idle"])

    def test_connections_command_prints_table(self, capsys):
        exit_code = main(["--services", "googledrive", "connections"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 3" in captured
        assert "googledrive" in captured

    def test_idle_command_with_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "idle.csv"
        exit_code = main(["--services", "wuala", "--csv", str(csv_path), "idle", "--minutes", "2"])
        assert exit_code == 0
        content = csv_path.read_text()
        assert content.splitlines()[0].startswith("service,")
        assert "wuala" in content
        assert "CSV written" in capsys.readouterr().out

    def test_performance_command_small_run(self, capsys):
        exit_code = main(["--services", "wuala", "performance", "--repetitions", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 6a" in captured and "Fig. 6c" in captured

    def test_all_command_writes_one_csv_per_stage(self, tmp_path, capsys):
        # Regression: `cloudbench all --csv` used to write only the
        # performance rows; now every completed stage gets its own CSV.
        csv_path = tmp_path / "results.csv"
        exit_code = main(
            [
                "--services", "googledrive", "--csv", str(csv_path),
                "all", "--stages", "idle,performance", "--minutes", "1", "--repetitions", "1", "--jobs", "1",
            ]
        )
        assert exit_code == 0
        idle_csv = tmp_path / "results.idle.csv"
        performance_csv = tmp_path / "results.performance.csv"
        assert idle_csv.exists() and performance_csv.exists()
        assert idle_csv.read_text().splitlines()[0].startswith("service,")
        assert "googledrive" in performance_csv.read_text()
        out = capsys.readouterr().out
        assert str(idle_csv) in out and str(performance_csv) in out

    def test_all_command_emits_timing_and_json(self, tmp_path, capsys):
        json_path = tmp_path / "campaign.json"
        exit_code = main(
            [
                "--services", "googledrive", "--seed", "3",
                "all", "--stages", "idle", "--minutes", "1", "--jobs", "1", "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Campaign timing (jobs=1)" in out
        assert "total wall-clock" in out
        payload = json.loads(json_path.read_text())
        assert payload["seed"] == 3 and payload["jobs"] == 1
        assert [cell["stage"] for cell in payload["cells"]] == ["idle"]
        assert payload["cells"][0]["rows"][0]["service"] == "googledrive"

    def test_all_command_rejects_unknown_stage(self):
        with pytest.raises(SystemExit):
            main(["--services", "googledrive", "all", "--stages", "preformance"])
