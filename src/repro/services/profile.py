"""Service profiles: everything that distinguishes one cloud service from another.

A profile is a *description* of a service's design — capabilities, server
placement, connection management, polling and client-side processing costs.
The generic client engine in :mod:`repro.services.base` interprets the
profile; the per-service modules provide the concrete values reported by the
paper plus the small behavioural overrides that do not fit a flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.geo.datacenters import DataCenter
from repro.geo.locations import TESTBED_LOCATION, Location
from repro.geo.vantage import rtt_between
from repro.netsim.endpoint import Endpoint
from repro.netsim.link import NetworkPath
from repro.sync.compression import CompressionPolicy
from repro.sync.protocol import MessageSizes
from repro.units import mbps

__all__ = [
    "ServiceCapabilities",
    "ServerSpec",
    "PollingSpec",
    "LoginSpec",
    "TimingSpec",
    "ConnectionPolicy",
    "ServiceProfile",
]


@dataclass(frozen=True)
class ServiceCapabilities:
    """Which of the §4 capabilities the client implements (Table 1)."""

    #: One of ``"none"``, ``"fixed"``, ``"variable"``.
    chunking: str = "none"
    #: Chunk size in bytes (exact for fixed chunking, average for variable).
    chunk_size: Optional[int] = None
    #: Transmit several small files/chunks as one pipelined object.
    bundling: bool = False
    #: Compression policy applied before transmission.
    compression: CompressionPolicy = CompressionPolicy.NEVER
    #: Skip uploading content the server already stores.
    deduplication: bool = False
    #: Transmit only modified portions of known files.
    delta_encoding: bool = False
    #: Encrypt data on the client before it leaves the machine (Wuala).
    client_side_encryption: bool = False

    def summary_row(self) -> dict:
        """Row for the Table 1 reproduction."""
        if self.chunking == "none":
            chunking = "no"
        elif self.chunking == "fixed":
            chunking = f"{(self.chunk_size or 0) // 1_000_000} MB"
        else:
            chunking = "var."
        compression = {
            CompressionPolicy.NEVER: "no",
            CompressionPolicy.ALWAYS: "always",
            CompressionPolicy.SMART: "smart",
        }[self.compression]
        return {
            "chunking": chunking,
            "bundling": "yes" if self.bundling else "no",
            "compression": compression,
            "deduplication": "yes" if self.deduplication else "no",
            "delta_encoding": "yes" if self.delta_encoding else "no",
        }


@dataclass(frozen=True)
class ServerSpec:
    """One server role of the service: where it is and how fast the path to it is."""

    hostname: str
    datacenter: DataCenter
    #: Upload bottleneck towards this server, bits per second.
    rate_up_bps: float = mbps(20.0)
    #: Download bottleneck from this server, bits per second.
    rate_down_bps: float = mbps(50.0)
    #: Server-side processing time per application request.
    server_processing: float = 0.015
    #: TCP port (443 for HTTPS, 80 for the plain-HTTP notification channels).
    port: int = 443
    #: Whether connections to this server use TLS.
    tls: bool = True

    def endpoint(self, host_index: int = 1) -> Endpoint:
        """Network endpoint (hostname + IP inside the data center's prefix)."""
        return Endpoint(hostname=self.hostname, ip=self.datacenter.address(host_index), port=self.port)

    def path_from(self, vantage: Location = TESTBED_LOCATION) -> NetworkPath:
        """Network path from the test computer's location to this server."""
        return NetworkPath(
            rtt=rtt_between(vantage, self.datacenter.location, jitter_label=self.hostname),
            uplink_bps=self.rate_up_bps,
            downlink_bps=self.rate_down_bps,
            server_processing=self.server_processing,
        )


@dataclass(frozen=True)
class PollingSpec:
    """Background keep-alive/notification behaviour while the client is idle (§3.1)."""

    #: Seconds between polls.
    interval: float = 60.0
    #: Request bytes per poll (application payload).
    request_bytes: int = 250
    #: Response bytes per poll.
    response_bytes: int = 180
    #: Open a brand new HTTPS connection for every poll (Amazon Cloud Drive).
    new_connection_per_poll: bool = False
    #: Use the plain-HTTP notification channel instead of the control channel.
    use_notification_channel: bool = False


@dataclass(frozen=True)
class LoginSpec:
    """Traffic exchanged when the client starts and authenticates (§3.1, Fig. 1)."""

    #: Number of distinct servers contacted during login (SkyDrive: 13).
    server_count: int = 3
    #: Total login traffic in bytes, spread over those servers.
    total_bytes: int = 36_000
    #: Pattern used to derive per-login-server hostnames; ``{index}`` is replaced.
    hostname_pattern: str = "auth{index}.example.com"
    #: Response bytes of the notification-channel subscription performed right
    #: after login (Dropbox opens its plain-HTTP notification channel with a
    #: long-poll GET).  ``0`` means no subscription exchange.
    notification_subscribe_bytes: int = 0


@dataclass(frozen=True)
class TimingSpec:
    """Client-side processing costs (seconds)."""

    #: Delay between a file-system change and the client reacting to it.
    detection_delay: float = 1.0
    #: Extra wait before starting the upload of a multi-file batch (bundling timer).
    bundle_wait: float = 0.0
    #: Per-file pre-processing before any upload starts (indexing, queueing).
    per_file_preprocess: float = 0.01
    #: Hashing/encryption cost per megabyte of new content, applied before upload.
    per_mb_preprocess: float = 0.05
    #: Per-file processing inside the upload loop (API calls, bookkeeping).
    per_file_processing: float = 0.02
    #: Per-file server-side commit cost incurred on the storage channel
    #: (models Dropbox's per-file registration inside bundled uploads).
    per_file_storage_commit: float = 0.0


@dataclass(frozen=True)
class ConnectionPolicy:
    """How the client manages TCP/TLS connections during synchronization (§4.2)."""

    #: Open a new TCP+TLS storage connection for every file (Google Drive, Cloud Drive).
    new_storage_connection_per_file: bool = False
    #: Number of *extra* control connections opened per file operation (Cloud Drive: 3).
    control_connections_per_file: int = 0
    #: Wait for an application-layer acknowledgement after each file (SkyDrive, Wuala).
    wait_app_ack_per_file: bool = False
    #: Keep one persistent control connection across the whole session.
    persistent_control_connection: bool = True
    #: Keep one persistent storage connection across a batch (when not per-file).
    persistent_storage_connection: bool = True
    #: Exchange a per-file commit message on the control connection (services
    #: acknowledging files on the storage channel instead set this to False).
    per_file_commit_on_control: bool = True


@dataclass
class ServiceProfile:
    """Complete description of one personal cloud storage service."""

    name: str
    display_name: str
    capabilities: ServiceCapabilities
    control_servers: List[ServerSpec]
    storage_servers: List[ServerSpec]
    notification_server: Optional[ServerSpec] = None
    polling: PollingSpec = field(default_factory=PollingSpec)
    login: LoginSpec = field(default_factory=LoginSpec)
    timing: TimingSpec = field(default_factory=TimingSpec)
    connections: ConnectionPolicy = field(default_factory=ConnectionPolicy)
    message_sizes: MessageSizes = field(default_factory=MessageSizes)
    #: Extra control-plane bytes exchanged once per synchronization batch
    #: (capability signalling, client telemetry); calibrates §5.3 overheads.
    per_sync_control_overhead_bytes: int = 0
    #: Maximum payload carried by one bundle (only used when bundling).
    max_bundle_bytes: int = 4_000_000
    #: Maximum number of entries per bundle.
    max_bundle_files: int = 50

    def __post_init__(self) -> None:
        if not self.control_servers:
            raise ConfigurationError(f"{self.name}: at least one control server is required")
        if not self.storage_servers:
            raise ConfigurationError(f"{self.name}: at least one storage server is required")

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def primary_control(self) -> ServerSpec:
        """The control server the client talks to by default.

        List order encodes the server-selection behaviour observed in the
        paper: the first entry is the one the client actually uses from the
        European testbed (services doing geo-steering, like Google Drive,
        place their nearest front-end first when the profile is built).
        """
        return self.control_servers[0]

    @property
    def primary_storage(self) -> ServerSpec:
        """The storage server the client uploads to by default (first entry)."""
        return self.storage_servers[0]

    @property
    def control_hostnames(self) -> List[str]:
        """DNS names of control (and notification/login) servers."""
        names = [server.hostname for server in self.control_servers]
        if self.notification_server is not None:
            names.append(self.notification_server.hostname)
        names.extend(self.login_hostnames())
        return sorted(set(names))

    @property
    def storage_hostnames(self) -> List[str]:
        """DNS names of storage servers."""
        return sorted({server.hostname for server in self.storage_servers})

    @property
    def all_hostnames(self) -> List[str]:
        """Every DNS name the client may contact."""
        return sorted(set(self.control_hostnames) | set(self.storage_hostnames))

    def login_hostnames(self) -> List[str]:
        """Hostnames contacted during login, derived from the login pattern."""
        return [self.login.hostname_pattern.format(index=index + 1) for index in range(self.login.server_count)]

    def datacenters(self) -> List[DataCenter]:
        """Distinct ground-truth data centers used by this service."""
        sites = {}
        for server in [*self.control_servers, *self.storage_servers]:
            sites[server.datacenter.name] = server.datacenter
        if self.notification_server is not None:
            sites[self.notification_server.datacenter.name] = self.notification_server.datacenter
        return list(sites.values())

    def capability_row(self) -> dict:
        """Row of the Table 1 reproduction, keyed by capability name."""
        return self.capabilities.summary_row()
