"""Tests for the figure experiments (reduced-size runs)."""

from __future__ import annotations

import pytest

from repro.core.experiments.compression import CompressionExperiment
from repro.core.experiments.delta import DELTA_CASES, DeltaEncodingExperiment
from repro.core.experiments.idle import IdleExperiment
from repro.core.experiments.performance import FIGURE_METRICS, PerformanceExperiment
from repro.core.experiments.synseries import SynSeriesExperiment
from repro.core.workloads import workload_by_name
from repro.errors import ConfigurationError
from repro.filegen.model import FileKind
from repro.units import MB, minutes


class TestIdleExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return IdleExperiment(["dropbox", "clouddrive"], duration=minutes(8)).run()

    def test_series_are_cumulative(self, result):
        for series in result.series().values():
            values = [value for _, value in series]
            assert values == sorted(values)
            assert values[-1] > 0

    def test_clouddrive_background_traffic_dominates(self, result):
        dropbox = result.services["dropbox"]
        clouddrive = result.services["clouddrive"]
        assert clouddrive.background_rate_bps > 10 * dropbox.background_rate_bps
        assert clouddrive.connections_opened > 20

    def test_rows_have_expected_columns(self, result):
        row = result.rows()[0]
        assert {"service", "login_kB", "background_bps", "daily_MB"} <= set(row)


class TestSynSeriesExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        workload = workload_by_name("100x10kB")
        small = type(workload)(name="20x10kB", file_count=20, file_size=10_000)
        return SynSeriesExperiment(["clouddrive", "googledrive"], workload=small).run()

    def test_connection_counts_reflect_per_file_connections(self, result):
        assert result.services["googledrive"].total_connections == 20
        assert result.services["clouddrive"].total_connections == 80

    def test_series_is_monotonic_in_time_and_count(self, result):
        series = result.services["clouddrive"].series
        times = [t for t, _ in series]
        counts = [c for _, c in series]
        assert times == sorted(times)
        assert counts == list(range(1, len(counts) + 1))


class TestDeltaExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return DeltaEncodingExperiment(
            ["dropbox", "googledrive"], append_sizes=[1 * MB], random_sizes=[4 * MB]
        ).run()

    def test_dropbox_uploads_only_the_change(self, result):
        series = result.series("append")["dropbox"]
        assert all(uploaded < 0.3 for _, uploaded in series)

    def test_googledrive_reuploads_whole_file(self, result):
        series = result.series("append")["googledrive"]
        assert all(uploaded > 0.9 for _, uploaded in series)

    def test_random_case_includes_chunk_shift_effect(self, result):
        dropbox_random = dict(result.series("random")["dropbox"])
        assert 0.1 < dropbox_random[4 * MB] < 1.0

    def test_run_service_is_concatenation_of_unit_cases(self):
        # The campaign engine's per-case unit cells must fold back into
        # exactly the whole-service point list, in the same order.
        experiment = DeltaEncodingExperiment(["dropbox"], append_sizes=[500_000], random_sizes=[1 * MB])
        whole = experiment.run_service("dropbox")
        split = [point for case in DELTA_CASES for point in experiment.run_case("dropbox", case)]
        assert whole == split

    def test_run_case_rejects_unknown_case(self):
        experiment = DeltaEncodingExperiment(["dropbox"])
        with pytest.raises(ConfigurationError, match="valid cases"):
            experiment.run_case("dropbox", "prepend")


class TestCompressionExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return CompressionExperiment(["dropbox", "googledrive", "skydrive"], sizes=[500_000]).run()

    def test_text_compressed_only_by_dropbox_and_google(self, result):
        text = {service: points[0][1] for service, points in result.series(FileKind.TEXT).items()}
        assert text["dropbox"] < 0.3
        assert text["googledrive"] < 0.3
        assert text["skydrive"] > 0.45

    def test_fake_jpeg_separates_smart_from_always(self, result):
        fake = {service: points[0][1] for service, points in result.series(FileKind.FAKE_JPEG).items()}
        assert fake["dropbox"] < 0.3
        assert fake["googledrive"] > 0.45

    def test_random_bytes_never_compressed(self, result):
        binary = {service: points[0][1] for service, points in result.series(FileKind.BINARY).items()}
        assert all(value > 0.45 for value in binary.values())

    def test_run_service_is_concatenation_of_unit_kinds(self):
        # Each content class runs on its own fresh testbed session, so the
        # campaign engine's per-kind unit cells reproduce run_service exactly.
        experiment = CompressionExperiment(["dropbox"], sizes=[200_000])
        whole = experiment.run_service("dropbox")
        split = [point for kind in experiment.kinds for point in experiment.run_kind("dropbox", kind)]
        assert whole == split


class TestPerformanceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return PerformanceExperiment(
            services=["dropbox", "googledrive"],
            workloads=[workload_by_name("1x100kB"), workload_by_name("100x10kB")],
            repetitions=2,
            pause_between_runs=10.0,
        ).run()

    def test_all_pairs_present_with_repetitions(self, result):
        assert len(result.runs) == 2 * 2 * 2
        assert len(result.pairs()) == 4
        assert all(row["repetitions"] == 2 for row in result.rows())

    def test_figure_series_structure(self, result):
        completion = result.figure_series("completion")
        assert set(completion) == {"dropbox", "googledrive"}
        assert set(completion["dropbox"]) == {"1x100kB", "100x10kB"}

    def test_dropbox_beats_googledrive_on_many_small_files(self, result):
        completion = result.figure_series("completion")
        assert completion["dropbox"]["100x10kB"] < completion["googledrive"]["100x10kB"] / 2

    def test_googledrive_beats_dropbox_on_single_small_file(self, result):
        completion = result.figure_series("completion")
        assert completion["googledrive"]["1x100kB"] < completion["dropbox"]["1x100kB"]

    def test_run_service_is_concatenation_of_unit_pairs(self, result):
        experiment = PerformanceExperiment(
            services=["dropbox"], workloads=[workload_by_name("1x100kB"), workload_by_name("10x100kB")],
            repetitions=2, pause_between_runs=10.0,
        )
        whole = experiment.run_service("dropbox")
        split = [run for workload in experiment.workloads for run in experiment.run_pair("dropbox", workload)]
        assert whole == split

    def test_figure_series_rejects_unknown_metric_listing_valid_ones(self, result):
        with pytest.raises(ConfigurationError) as excinfo:
            result.figure_series("throughput")
        message = str(excinfo.value)
        for metric in FIGURE_METRICS:
            assert metric in message

    def test_pairs_dedups_preserving_first_seen_order(self, result):
        pairs = result.pairs()
        assert len(pairs) == len(set(pairs))  # no duplicates despite repetitions
        assert pairs[0] == (result.runs[0].service, result.runs[0].workload)

    def test_repetitions_are_deterministic_given_seed(self):
        single = PerformanceExperiment(services=["wuala"], workloads=[workload_by_name("1x100kB")], repetitions=1)
        first = single.run_single("wuala", workload_by_name("1x100kB"), 0)
        second = single.run_single("wuala", workload_by_name("1x100kB"), 0)
        assert first.completion_time == pytest.approx(second.completion_time)
        assert first.total_traffic_bytes == second.total_traffic_bytes
