"""Simulated wall clock."""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["SimClock"]


class SimClock:
    """A monotonically non-decreasing simulated clock.

    The clock only moves forward; attempts to set it backwards indicate a
    bug in a caller and raise :class:`SimulationError`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, duration: float) -> float:
        """Move the clock forward by ``duration`` seconds and return the new time."""
        if duration < 0:
            raise SimulationError(f"cannot advance clock by negative duration {duration!r}")
        self._now += duration
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self._now:.6f})"
