"""Tests for deterministic seed derivation."""

from __future__ import annotations

from repro.randomness import DEFAULT_SEED, derive_seed, make_rng


def test_derive_seed_is_deterministic():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)


def test_derive_seed_depends_on_labels():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a", 1) != derive_seed(1, "a", 2)


def test_derive_seed_depends_on_base_seed():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_make_rng_reproducible_streams():
    first = make_rng(DEFAULT_SEED, "stream").random()
    second = make_rng(DEFAULT_SEED, "stream").random()
    assert first == second


def test_make_rng_independent_streams():
    a = [make_rng(DEFAULT_SEED, "a").random() for _ in range(3)]
    b = [make_rng(DEFAULT_SEED, "b").random() for _ in range(3)]
    assert a != b
