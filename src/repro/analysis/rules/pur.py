"""PUR rules: purity/coverage invariants that span files.

**PUR001** cross-checks the cache-key coverage contract between
:class:`repro.core.campaign.CampaignConfig` and
:func:`repro.core.store.cache_key`: every dataclass field of the config
must appear in the ``CONFIG_KEY_FIELDS`` manifest next to ``cache_key``
(and vice versa).  Adding a config knob without extending the key
manifest is then a lint error at review time, not a silent
cache-collision at sweep time — two campaigns differing only in the new
knob would otherwise alias the same store entries.

The rule is a *project* rule: it only fires when the linted file set
contains both modules (so linting a test directory alone stays silent),
and it reads the dataclass fields and the manifest from the ASTs, never
by importing — the lint must work on a tree too broken to import.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.engine import Rule, SourceModule
from repro.analysis.findings import Finding

__all__ = ["CacheKeyCoverageRule"]

#: Path suffixes of the two modules bound by the contract.
_CONFIG_MODULE = "repro/core/campaign.py"
_STORE_MODULE = "repro/core/store.py"

#: The dataclass whose fields must all reach the key material.
_CONFIG_CLASS = "CampaignConfig"

#: The manifest constant the store declares its coverage with.
_MANIFEST_NAME = "CONFIG_KEY_FIELDS"


def _dataclass_fields(tree: ast.Module, class_name: str) -> Optional[List[str]]:
    """The annotated field names of a (data)class, in declaration order."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = []
            for statement in node.body:
                if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
                    fields.append(statement.target.id)
            return fields
    return None


def _manifest(tree: ast.Module) -> Optional[Tuple[ast.AST, List[str]]]:
    """The ``CONFIG_KEY_FIELDS`` assignment node and its string items."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(target, ast.Name) and target.id == _MANIFEST_NAME for target in node.targets):
            continue
        items: List[str] = []
        if isinstance(node.value, (ast.Tuple, ast.List)):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    items.append(element.value)
        return node, items
    return None


class CacheKeyCoverageRule(Rule):
    rule_id = "PUR001"
    title = "CampaignConfig fields not covered by the cache key"

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        config_module = next((m for m in modules if m.path.endswith(_CONFIG_MODULE)), None)
        store_module = next((m for m in modules if m.path.endswith(_STORE_MODULE)), None)
        if config_module is None or store_module is None:
            return
        if config_module.tree is None or store_module.tree is None:
            return  # the parse failure is already reported as ENG001
        fields = _dataclass_fields(config_module.tree, _CONFIG_CLASS)
        if fields is None:
            yield Finding(
                path=config_module.path, line=0, column=0, rule=self.rule_id,
                message=f"class {_CONFIG_CLASS} not found; the cache-key coverage contract cannot be checked",
            )
            return
        manifest = _manifest(store_module.tree)
        if manifest is None:
            yield Finding(
                path=store_module.path, line=0, column=0, rule=self.rule_id,
                message=(
                    f"{_MANIFEST_NAME} manifest not found next to cache_key; "
                    f"declare the {_CONFIG_CLASS} fields the key material covers"
                ),
            )
            return
        node, covered = manifest
        missing = sorted(set(fields) - set(covered))
        extra = sorted(set(covered) - set(fields))
        if missing:
            yield Finding(
                path=store_module.path,
                line=getattr(node, "lineno", 0),
                column=getattr(node, "col_offset", 0),
                rule=self.rule_id,
                message=(
                    f"{_CONFIG_CLASS} field(s) {', '.join(missing)} missing from {_MANIFEST_NAME}: "
                    "extend the cache key (and bump STORE_SCHEMA_VERSION) or campaigns differing "
                    "only in the new field will alias the same store entries"
                ),
            )
        if extra:
            yield Finding(
                path=store_module.path,
                line=getattr(node, "lineno", 0),
                column=getattr(node, "col_offset", 0),
                rule=self.rule_id,
                message=(
                    f"{_MANIFEST_NAME} names unknown {_CONFIG_CLASS} field(s) {', '.join(extra)}: "
                    "the manifest must mirror the dataclass exactly"
                ),
            )
