"""The data-center discovery pipeline (§2.1, §3.2, Fig. 2).

Given the DNS names a client was observed contacting, the pipeline:

1. resolves each name through every open resolver in the world-wide set
   (geo-DNS then exposes one front-end per region for services like Google
   Drive, and a stable handful of addresses for centralised services),
2. attributes every distinct address to an owner via whois,
3. geolocates every address with the hybrid geolocator,
4. aggregates the result into a per-provider report: front-end count,
   distinct sites, owners, and — when ground truth is available — the
   geolocation error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.geo.datacenters import DataCenterCatalogue
from repro.geo.dns import AuthoritativeDNS, OpenResolver
from repro.geo.geolocate import HybridGeolocator, LocationEstimate
from repro.geo.locations import Location
from repro.geo.whois import WhoisDatabase

__all__ = ["DiscoveredFrontEnd", "DiscoveryReport", "DataCenterDiscovery"]


@dataclass
class DiscoveredFrontEnd:
    """One front-end address discovered through the resolver fan-out."""

    ip: str
    hostnames: List[str]
    owner: str
    estimate: LocationEstimate
    resolver_count: int = 0
    ground_truth: Optional[Location] = None

    @property
    def location(self) -> Location:
        """Estimated location of the front-end."""
        return self.estimate.location

    @property
    def geolocation_error_km(self) -> Optional[float]:
        """Estimation error against ground truth, when ground truth is known."""
        if self.ground_truth is None:
            return None
        return self.estimate.error_km(self.ground_truth)


@dataclass
class DiscoveryReport:
    """Aggregated discovery results for one provider."""

    provider: str
    hostnames: List[str]
    front_ends: List[DiscoveredFrontEnd] = field(default_factory=list)
    resolvers_used: int = 0

    @property
    def distinct_ips(self) -> int:
        """Number of distinct front-end addresses found."""
        return len(self.front_ends)

    @property
    def distinct_sites(self) -> int:
        """Number of distinct (city, country) sites the front-ends map to."""
        return len({(fe.location.city, fe.location.country) for fe in self.front_ends})

    @property
    def owners(self) -> List[str]:
        """Sorted list of infrastructure owners seen for this provider."""
        return sorted({fe.owner for fe in self.front_ends})

    @property
    def countries(self) -> List[str]:
        """Sorted list of countries hosting the provider's front-ends."""
        return sorted({fe.location.country for fe in self.front_ends})

    def sites(self) -> List[Location]:
        """Distinct estimated locations (one entry per site)."""
        seen: Dict[str, Location] = {}
        for front_end in self.front_ends:
            key = f"{front_end.location.city}|{front_end.location.country}"
            seen.setdefault(key, front_end.location)
        return list(seen.values())

    def mean_geolocation_error_km(self) -> Optional[float]:
        """Average geolocation error where ground truth is known."""
        errors = [fe.geolocation_error_km for fe in self.front_ends if fe.geolocation_error_km is not None]
        if not errors:
            return None
        return sum(errors) / len(errors)


class DataCenterDiscovery:
    """Runs the full §2.1 methodology against the simulated world."""

    def __init__(
        self,
        dns: AuthoritativeDNS,
        resolvers: Sequence[OpenResolver],
        whois: WhoisDatabase,
        geolocator: HybridGeolocator,
        catalogue: Optional[DataCenterCatalogue] = None,
    ) -> None:
        self._dns = dns
        self._resolvers = list(resolvers)
        self._whois = whois
        self._geolocator = geolocator
        self._catalogue = catalogue

    def discover(self, provider: str, hostnames: Sequence[str]) -> DiscoveryReport:
        """Resolve ``hostnames`` world-wide and characterise every address found."""
        report = DiscoveryReport(provider=provider, hostnames=list(hostnames), resolvers_used=len(self._resolvers))
        ip_hostnames: Dict[str, set] = {}
        ip_resolver_count: Dict[str, int] = {}
        for resolver in self._resolvers:
            for hostname in hostnames:
                for ip in resolver.query(self._dns, hostname):
                    ip_hostnames.setdefault(ip, set()).add(hostname)
                    ip_resolver_count[ip] = ip_resolver_count.get(ip, 0) + 1
        for ip in sorted(ip_hostnames):
            estimate = self._geolocator.locate(ip)
            ground_truth = self._catalogue.location_of_ip(ip) if self._catalogue is not None else None
            report.front_ends.append(
                DiscoveredFrontEnd(
                    ip=ip,
                    hostnames=sorted(ip_hostnames[ip]),
                    owner=self._whois.owner_of(ip),
                    estimate=estimate,
                    resolver_count=ip_resolver_count[ip],
                    ground_truth=ground_truth,
                )
            )
        return report
