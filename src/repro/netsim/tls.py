"""TLS handshake and record-layer overhead parameters.

The simulator does not implement cryptography; it models the *traffic* a TLS
session generates, which is what the paper's capture-based methodology
observes: a handshake worth a couple of round trips and a few kilobytes of
certificates, plus a small per-record framing overhead on application data.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TLSParameters"]


@dataclass(frozen=True)
class TLSParameters:
    """Byte and latency costs of a TLS session.

    The defaults correspond to a full TLS 1.0/1.2 handshake with a typical
    ~3.5 kB certificate chain, which matches the per-connection overhead the
    paper observes for services that open one SSL connection per file
    (§4.2, §5.3).
    """

    #: Number of round trips consumed by the handshake (2 for a full
    #: handshake, 1 for an abbreviated/resumed one).
    handshake_rtts: int = 2
    #: ClientHello size in bytes.
    client_hello_bytes: int = 300
    #: ServerHello + certificate chain + ServerHelloDone size in bytes.
    server_hello_bytes: int = 3800
    #: ClientKeyExchange + ChangeCipherSpec + Finished size in bytes.
    client_finished_bytes: int = 350
    #: Server ChangeCipherSpec + Finished (and NewSessionTicket) size in bytes.
    server_finished_bytes: int = 250
    #: CPU/processing delay charged once per handshake (client + server side).
    compute_delay: float = 0.012
    #: Framing overhead added to every TLS record.
    record_overhead_bytes: int = 29
    #: Maximum plaintext bytes per TLS record.
    max_record_bytes: int = 16384

    def resumed(self) -> "TLSParameters":
        """Return parameters for an abbreviated (session-resumption) handshake."""
        return TLSParameters(
            handshake_rtts=1,
            client_hello_bytes=250,
            server_hello_bytes=200,
            client_finished_bytes=100,
            server_finished_bytes=100,
            compute_delay=0.004,
            record_overhead_bytes=self.record_overhead_bytes,
            max_record_bytes=self.max_record_bytes,
        )

    def record_bytes(self, payload_len: int) -> int:
        """Bytes on the wire for ``payload_len`` bytes of application data."""
        if payload_len <= 0:
            return 0
        records = -(-payload_len // self.max_record_bytes)  # ceil division
        return payload_len + records * self.record_overhead_bytes

    @property
    def handshake_client_bytes(self) -> int:
        """Total handshake bytes sent by the client."""
        return self.client_hello_bytes + self.client_finished_bytes

    @property
    def handshake_server_bytes(self) -> int:
        """Total handshake bytes sent by the server."""
        return self.server_hello_bytes + self.server_finished_bytes

    @property
    def handshake_total_bytes(self) -> int:
        """Total handshake bytes in both directions."""
        return self.handshake_client_bytes + self.handshake_server_bytes
