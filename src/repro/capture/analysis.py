"""Trace analysis: the measurement primitives behind every figure in the paper.

All functions take a :class:`~repro.capture.trace.PacketTrace` (or a filtered
view of one) and return plain numbers or series.  None of them look at
simulator internals — they only use information a real capture would expose
(timestamps, sizes, flags, 5-tuples and server DNS names), which keeps the
methodology faithful to the paper.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CaptureError
from repro.netsim.packet import PacketDirection, TCPFlags
from repro.capture.trace import PacketTrace

__all__ = [
    "count_tcp_syns",
    "count_tcp_connections",
    "syn_time_series",
    "cumulative_bytes_series",
    "count_application_bursts",
    "burst_payload_sizes",
    "startup_time",
    "completion_time",
    "overhead_fraction",
    "upload_throughput_bps",
    "classify_hosts",
]


def count_tcp_syns(trace: PacketTrace, *, outgoing_only: bool = True) -> int:
    """Number of TCP SYN packets in the trace.

    With ``outgoing_only`` (default) only client-initiated SYNs are counted,
    i.e. SYN/ACKs from servers are excluded — this matches counting the
    connections the client opens (Fig. 3).

    Handshake packets are never elided, so this reads the segment-level
    columns: flow-segment rows carry ACK|PSH and simply never match.
    """
    columns = trace.segment_columns()
    syn = TCPFlags.SYN
    ack = TCPFlags.ACK
    out = PacketDirection.OUT
    count = 0
    for flags, direction in zip(columns.flags, columns.directions):
        if not (flags & syn):
            continue
        if flags & ack:
            continue  # SYN/ACK from the server
        if outgoing_only and direction is not out:
            continue
        count += 1
    return count


def count_tcp_connections(trace: PacketTrace) -> int:
    """Number of distinct TCP connections observed (by client SYN)."""
    return count_tcp_syns(trace, outgoing_only=True)


def syn_time_series(trace: PacketTrace, *, relative: bool = True) -> List[Tuple[float, int]]:
    """Cumulative count of client SYN packets over time (Fig. 3's y-axis).

    Returns a list of ``(timestamp, cumulative_syn_count)`` pairs, one per
    SYN.  With ``relative`` timestamps are re-based to the first packet of
    the trace.

    Like :func:`count_tcp_syns` this works on the segment-level columns —
    SYNs are always plain packet rows, so no flow segment ever expands.
    """
    origin = trace.first_timestamp() or 0.0
    columns = trace.segment_columns()
    syn = TCPFlags.SYN
    ack = TCPFlags.ACK
    out = PacketDirection.OUT
    series: List[Tuple[float, int]] = []
    count = 0
    for timestamp, flags, direction in zip(columns.timestamps, columns.flags, columns.directions):
        if (flags & syn) and not (flags & ack) and direction is out:
            count += 1
            series.append((timestamp - origin if relative else timestamp, count))
    return series


def cumulative_bytes_series(
    trace: PacketTrace,
    *,
    interval: float = 10.0,
    duration: Optional[float] = None,
    relative: bool = True,
) -> List[Tuple[float, float]]:
    """Cumulative wire bytes over time, sampled every ``interval`` seconds.

    This is the series plotted in Fig. 1 (background traffic while idle).
    Returns ``(time, cumulative_bytes)`` pairs including a final sample at
    ``duration`` (or at the last packet when ``duration`` is not given).
    """
    if interval <= 0:
        raise CaptureError("interval must be positive")
    origin = trace.first_timestamp() or 0.0
    if not relative:
        origin = 0.0
    columns = trace.sorted_columns()
    timestamps = columns.timestamps
    wire_lens = [headers + payload for headers, payload in zip(columns.headers_lens, columns.payload_lens)]
    count = len(timestamps)
    end = duration if duration is not None else (trace.last_timestamp() or 0.0) - origin
    series: List[Tuple[float, float]] = []
    cumulative = 0.0
    index = 0
    sample_time = 0.0
    while sample_time <= end + 1e-9:
        while index < count and timestamps[index] - origin <= sample_time + 1e-9:
            cumulative += wire_lens[index]
            index += 1
        series.append((sample_time, cumulative))
        sample_time += interval
    if not series or series[-1][0] < end - 1e-9:
        # Close the series exactly at the end of the observation window so
        # the last sample accounts for every captured byte.
        while index < count and timestamps[index] - origin <= end + 1e-9:
            cumulative += wire_lens[index]
            index += 1
        series.append((end, cumulative))
    return series


def count_application_bursts(trace: PacketTrace, *, gap: float = 0.05) -> int:
    """Number of payload bursts separated by idle gaps longer than ``gap``.

    The paper uses burst counting to detect sequential per-file submission
    with application-layer acknowledgements (§4.2): the number of bursts is
    then proportional to the number of files uploaded.
    """
    if gap <= 0:
        raise CaptureError("gap must be positive")
    payload = trace.payload_packets().outgoing()
    if payload.is_empty():
        return 0
    timestamps = payload.sorted_columns().timestamps
    bursts = 1
    previous = timestamps[0]
    for timestamp in islice(timestamps, 1, None):
        if timestamp - previous > gap:
            bursts += 1
        previous = timestamp
    return bursts


def burst_payload_sizes(trace: PacketTrace, *, gap: float = 0.05) -> List[int]:
    """Outbound payload bytes carried by each application burst.

    Together with :func:`count_application_bursts` this reconstructs the
    "pauses during the upload" observation of §4.1: a fixed-size chunker
    produces bursts of identical size (except the last one), a
    content-defined chunker produces visibly varying burst sizes, and a
    client that does not chunk at all produces a single burst.
    """
    if gap <= 0:
        raise CaptureError("gap must be positive")
    payload = trace.payload_packets().outgoing()
    if payload.is_empty():
        return []
    columns = payload.sorted_columns()
    sizes: List[int] = []
    current = 0
    previous = columns.timestamps[0]
    for timestamp, payload_len in zip(columns.timestamps, columns.payload_lens):
        if timestamp - previous > gap and current > 0:
            sizes.append(current)
            current = 0
        current += payload_len
        previous = timestamp
    if current > 0:
        sizes.append(current)
    return sizes


def startup_time(trace: PacketTrace, modification_time: float, storage_hosts: Iterable[str]) -> float:
    """Synchronization start-up time (Fig. 6a).

    Computed from the moment files start being modified
    (``modification_time``) until the first packet of a storage flow is
    observed, as defined in §5.1.  The flow is anchored on its first
    *outgoing payload* packet: trailing acknowledgements of earlier activity
    (which a real capture also records slightly later) must not count as the
    beginning of a storage flow.
    """
    storage = trace.to_hosts(storage_hosts).after(modification_time).outgoing().payload_packets()
    first = storage.first_timestamp()
    if first is None:
        raise CaptureError("no storage flow observed after the modification time")
    return first - modification_time


def completion_time(trace: PacketTrace, storage_hosts: Iterable[str], *, after: Optional[float] = None) -> float:
    """Upload completion time (Fig. 6b).

    Difference between the first and the last packet with payload seen in
    any storage flow (§5.2); TCP tear-down and trailing control messages are
    excluded because they carry no storage payload.
    """
    storage = trace.to_hosts(storage_hosts)
    if after is not None:
        storage = storage.after(after)
    payload = storage.payload_packets()
    first = payload.first_timestamp()
    last = payload.last_timestamp()
    if first is None or last is None:
        raise CaptureError("no storage payload observed in the trace")
    return last - first


def overhead_fraction(trace: PacketTrace, benchmark_bytes: int, *, after: Optional[float] = None) -> float:
    """Protocol overhead (Fig. 6c): total traffic over the benchmark size.

    ``benchmark_bytes`` is the total application data the workload asked the
    service to synchronize; the numerator is every byte (storage plus
    control, both directions, headers included) seen during the experiment.
    """
    if benchmark_bytes <= 0:
        raise CaptureError("benchmark size must be positive")
    window = trace if after is None else trace.after(after)
    return window.total_bytes() / benchmark_bytes


def upload_throughput_bps(trace: PacketTrace, storage_hosts: Iterable[str]) -> float:
    """Average upload rate achieved on storage flows, in bits per second."""
    storage = trace.to_hosts(storage_hosts).payload_packets()
    duration = storage.duration()
    if duration <= 0:
        return 0.0
    return storage.uploaded_payload_bytes() * 8.0 / duration


def classify_hosts(
    trace: PacketTrace,
    *,
    payload_threshold: int = 50_000,
) -> Dict[str, str]:
    """Heuristically label each contacted host as ``"storage"`` or ``"control"``.

    Services that use separate servers for control and storage are trivially
    told apart by server name (§3.1); for services mixing both on the same
    hosts (Wuala) the paper falls back to flow sizes — hosts whose flows
    carry more than ``payload_threshold`` payload bytes are storage.

    Flow-segment rows carry their range's exact aggregate payload bytes, so
    the per-host totals come straight off the segment-level columns without
    materializing bulk packets.
    """
    columns = trace.segment_columns()
    totals: Dict[str, int] = {}
    for hostname, payload_len in zip(columns.hostnames, columns.payload_lens):
        if not hostname:
            continue
        totals[hostname] = totals.get(hostname, 0) + payload_len
    return {
        hostname: "storage" if total >= payload_threshold else "control"
        for hostname, total in totals.items()
    }
