"""Hybrid IP geolocation, as described in §2.1 of the paper.

Popular geolocation databases are unreliable for cloud providers, so the
paper combines three signals, in decreasing order of preference:

1. informative strings (International Airport Codes) found in the reverse
   DNS name of the address,
2. the shortest RTT to PlanetLab vantage points (the target must be close to
   the node that measures the smallest RTT),
3. the last well-known router location seen on a traceroute towards the
   address.

The combination yields estimates within roughly a hundred kilometres, which
is enough to attribute a front-end to a metropolitan area / data-center
site.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import GeolocationError
from repro.geo.locations import Location, find_location
from repro.geo.vantage import PlanetLabNode, Traceroute

__all__ = ["LocationEstimate", "HybridGeolocator"]

_AIRPORT_TOKEN = re.compile(r"\.([a-z]{3})\d{0,2}\.")


@dataclass(frozen=True)
class LocationEstimate:
    """A geolocation estimate plus the signal that produced it."""

    ip: str
    location: Location
    method: str  # "reverse-dns", "min-rtt", or "traceroute"
    confidence_km: float

    def error_km(self, ground_truth: Location) -> float:
        """Distance between the estimate and the ground-truth location."""
        return self.location.distance_km(ground_truth)


class HybridGeolocator:
    """Combines reverse DNS, minimum RTT and traceroute into one estimate."""

    def __init__(
        self,
        planetlab_nodes: Sequence[PlanetLabNode],
        reverse_dns_lookup: Callable[[str], Optional[str]],
        traceroute: Traceroute,
        locate_ip: Callable[[str], Optional[Location]],
    ) -> None:
        if not planetlab_nodes:
            raise GeolocationError("at least one vantage point is required")
        self._nodes = list(planetlab_nodes)
        self._reverse_dns = reverse_dns_lookup
        self._traceroute = traceroute
        self._locate_ip = locate_ip

    # ------------------------------------------------------------------ #
    # Individual signals
    # ------------------------------------------------------------------ #
    def locate_by_reverse_dns(self, ip: str) -> Optional[LocationEstimate]:
        """Parse an airport code out of the PTR name, if one is published."""
        hostname = self._reverse_dns(ip)
        if not hostname:
            return None
        for token in _AIRPORT_TOKEN.findall("." + hostname.lower() + "."):
            location = find_location(token.upper())
            if location is not None:
                return LocationEstimate(ip=ip, location=location, method="reverse-dns", confidence_km=50.0)
        return None

    def locate_by_min_rtt(self, ip: str) -> Optional[LocationEstimate]:
        """Attribute the address to the location of the vantage point with minimum RTT."""
        best_node: Optional[PlanetLabNode] = None
        best_rtt = float("inf")
        for node in self._nodes:
            rtt = node.rtt_to_ip(ip, self._locate_ip)
            if rtt < best_rtt:
                best_rtt = rtt
                best_node = node
        if best_node is None:
            return None
        # RTT-implied radius: half the RTT at propagation speed bounds how
        # far the target can be from the winning node.
        radius_km = max(best_rtt / 2.0 * 200_000.0 / 1.7, 50.0)
        return LocationEstimate(ip=ip, location=best_node.location, method="min-rtt", confidence_km=radius_km)

    def locate_by_traceroute(self, ip: str) -> Optional[LocationEstimate]:
        """Use the deepest router with a recognisable location on the path."""
        location = self._traceroute.last_known_location(ip)
        if location is None:
            return None
        return LocationEstimate(ip=ip, location=location, method="traceroute", confidence_km=150.0)

    # ------------------------------------------------------------------ #
    # Hybrid combination
    # ------------------------------------------------------------------ #
    def locate(self, ip: str) -> LocationEstimate:
        """Return the best available estimate for ``ip``.

        Signals are tried in the paper's order of preference; the RTT-based
        estimate replaces a reverse-DNS estimate only if the reverse DNS gave
        nothing.  A :class:`GeolocationError` is raised when no signal works.
        """
        estimate = self.locate_by_reverse_dns(ip)
        if estimate is not None:
            return estimate
        estimate = self.locate_by_min_rtt(ip)
        if estimate is not None:
            return estimate
        estimate = self.locate_by_traceroute(ip)
        if estimate is not None:
            return estimate
        raise GeolocationError(f"no geolocation signal available for {ip}")

    def locate_many(self, ips: Sequence[str]) -> List[LocationEstimate]:
        """Locate a list of addresses (order preserved, duplicates collapsed)."""
        seen = {}
        for ip in ips:
            if ip not in seen:
                seen[ip] = self.locate(ip)
        return [seen[ip] for ip in dict.fromkeys(ips)]
