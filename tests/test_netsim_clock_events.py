"""Tests for the simulated clock and the event queue."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.netsim.clock import SimClock
from repro.netsim.events import EventQueue


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_rejects_negative(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-0.1)

    def test_advance_to_never_goes_backwards(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(12.0)
        assert clock.now == 12.0


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda: fired.append("late"))
        queue.schedule(1.0, lambda: fired.append("early"))
        while (event := queue.pop_due(5.0)) is not None:
            event.callback()
        assert fired == ["early", "late"]

    def test_same_time_events_fire_in_scheduling_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append("first"))
        queue.schedule(1.0, lambda: fired.append("second"))
        while (event := queue.pop_due(1.0)) is not None:
            event.callback()
        assert fired == ["first", "second"]

    def test_pop_due_respects_now(self):
        queue = EventQueue()
        queue.schedule(10.0, lambda: None)
        assert queue.pop_due(5.0) is None
        assert queue.pop_due(10.0) is not None

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        event.cancel()
        assert queue.pop_due(2.0) is None
        assert len(queue) == 0

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(3.0, lambda: None)
        queue.schedule(1.0, lambda: None)
        assert queue.peek_time() == 1.0

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.clear()
        assert len(queue) == 0


class TestEventQueueLiveCount:
    """The O(1) live counter and tombstone compaction."""

    def test_len_tracks_schedule_cancel_and_pop(self):
        queue = EventQueue()
        events = [queue.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert len(queue) == 10
        events[3].cancel()
        events[7].cancel()
        assert len(queue) == 8
        assert queue.pop_due(1.0) is not None
        assert len(queue) == 7

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_mass_cancellation_compacts_the_heap(self):
        queue = EventQueue()
        events = [queue.schedule(float(i % 97) + 1.0, lambda: None) for i in range(1000)]
        for index, event in enumerate(events):
            if index % 10 != 0:
                event.cancel()
        assert len(queue) == 100
        # The tombstones are gone, not merely marked: the heap holds only
        # (close to) the live events instead of all 1000 entries.
        assert len(queue._heap) <= 2 * len(queue) + 1

    def test_compaction_preserves_pop_order(self):
        reference = EventQueue()
        compacted = EventQueue()
        for queue in (reference, compacted):
            events = [queue.schedule(float(i % 13) + 1.0, lambda: None, label=str(i)) for i in range(300)]
            for index, event in enumerate(events):
                if index % 4 != 0:
                    event.cancel()

        def drain(queue):
            labels = []
            while (event := queue.pop_due(1e9)) is not None:
                labels.append(event.label)
            return labels

        # Force extra compactions on one queue mid-drain; order must not move.
        compacted._compact()
        assert drain(reference) == drain(compacted)

    def test_popped_event_cancel_does_not_underflow_len(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        popped = queue.pop_due(1.0)
        assert popped is event
        popped.cancel()  # cancelling after the pop must not double-decrement
        assert len(queue) == 1
