"""Amazon Cloud Drive client model.

What the paper reports about Cloud Drive (v2.0.2013.841):

* the most simplistic client of the study: no chunking, no bundling, no
  compression, no deduplication, no delta encoding (Table 1);
* three AWS data centers: Ireland and Northern Virginia for control and
  storage, Oregon for storage only (§3.2) — from Europe the client talks to
  the Irish site;
* extremely wasteful connection management: one TCP/SSL connection per file
  for storage plus three control connections per file operation, i.e. 400
  connections for 100 files, which takes about 55–60 s (Fig. 3, §4.2, §5.2);
* the worst background behaviour: a poll every 15 seconds, each on a brand
  new HTTPS connection — about 6 kb/s, roughly 65 MB per day of signalling
  traffic for an idle client (§3.1, Fig. 1);
* consequently a protocol overhead an order of magnitude above everyone
  else: more than 5 MB exchanged to commit 1 MB of content (§5.3).
"""

from __future__ import annotations

from repro.geo.datacenters import provider_datacenters
from repro.netsim.simulator import NetworkSimulator
from repro.services.backend import StorageBackend
from repro.services.base import CloudStorageClient
from repro.services.profile import (
    ConnectionPolicy,
    LoginSpec,
    PollingSpec,
    ServerSpec,
    ServiceCapabilities,
    ServiceProfile,
    TimingSpec,
)
from repro.sync.compression import CompressionPolicy
from repro.sync.protocol import MessageSizes
from repro.units import mbps

__all__ = ["clouddrive_profile", "CloudDriveClient"]


def clouddrive_profile() -> ServiceProfile:
    """Profile encoding the paper's findings about the Amazon Cloud Drive client."""
    dublin, virginia, oregon = provider_datacenters("clouddrive")
    control = ServerSpec(
        hostname="drive.amazonaws.com",
        datacenter=dublin,
        rate_up_bps=mbps(12.0),
        rate_down_bps=mbps(30.0),
        server_processing=0.025,
    )
    control_us = ServerSpec(
        hostname="drive-us.amazonaws.com",
        datacenter=virginia,
        rate_up_bps=mbps(8.0),
        rate_down_bps=mbps(20.0),
        server_processing=0.030,
    )
    storage = ServerSpec(
        hostname="content-eu.clouddrive.amazonaws.com",
        datacenter=dublin,
        rate_up_bps=mbps(10.0),
        rate_down_bps=mbps(30.0),
        server_processing=0.030,
    )
    storage_us = ServerSpec(
        hostname="content-na.clouddrive.amazonaws.com",
        datacenter=virginia,
        rate_up_bps=mbps(8.0),
        rate_down_bps=mbps(20.0),
        server_processing=0.030,
    )
    storage_oregon = ServerSpec(
        hostname="content-or.clouddrive.amazonaws.com",
        datacenter=oregon,
        rate_up_bps=mbps(8.0),
        rate_down_bps=mbps(20.0),
        server_processing=0.030,
    )
    return ServiceProfile(
        name="clouddrive",
        display_name="Cloud Drive",
        capabilities=ServiceCapabilities(
            chunking="none",
            chunk_size=None,
            bundling=False,
            compression=CompressionPolicy.NEVER,
            deduplication=False,
            delta_encoding=False,
        ),
        control_servers=[control, control_us],
        storage_servers=[storage, storage_us, storage_oregon],
        polling=PollingSpec(
            interval=15.0,
            request_bytes=1800,
            response_bytes=3800,
            new_connection_per_poll=True,
        ),
        login=LoginSpec(server_count=4, total_bytes=16_000, hostname_pattern="auth{index}.amazon.com"),
        timing=TimingSpec(
            detection_delay=5.0,
            bundle_wait=0.0,
            per_file_preprocess=0.01,
            per_mb_preprocess=0.03,
            per_file_processing=0.22,
        ),
        connections=ConnectionPolicy(
            new_storage_connection_per_file=True,
            control_connections_per_file=3,
            wait_app_ack_per_file=False,
            persistent_control_connection=False,
        ),
        # Cloud Drive's control exchanges are unusually verbose: every file
        # operation re-fetches state over its three throw-away connections,
        # which is what drives the >5x overhead of Fig. 6c.
        message_sizes=MessageSizes(list_changes_request=700, list_changes_response=3500),
    )


class CloudDriveClient(CloudStorageClient):
    """Amazon Cloud Drive: no client capabilities and very chatty protocols."""

    def __init__(self, simulator: NetworkSimulator, backend: StorageBackend | None = None) -> None:
        super().__init__(simulator, clouddrive_profile(), backend)
