"""Unit helpers and constants shared across the library.

The paper reports sizes in kB/MB (decimal multiples, as usual in network
measurement papers) and rates in kb/s / Mb/s.  To avoid unit confusion the
rest of the code base always stores:

* sizes in **bytes** (``int``),
* times in **seconds** (``float``),
* rates in **bits per second** (``float``).

The helpers below convert the human-friendly spellings used in the paper to
those canonical units and back again for reporting.
"""

from __future__ import annotations

#: Bytes in a kilobyte (decimal, as used in the paper: "100 kB", "10 kB").
KB = 1000
#: Bytes in a megabyte (decimal, as used in the paper: "1 MB", "4 MB chunks").
MB = 1000 * 1000
#: Bytes in a gigabyte.
GB = 1000 * 1000 * 1000

#: Binary multiples, used internally where chunk sizes are powers of two.
KIB = 1024
MIB = 1024 * 1024

#: Bits per byte.
BITS_PER_BYTE = 8


def kb(value: float) -> int:
    """Return ``value`` kilobytes expressed in bytes."""
    return int(value * KB)


def mb(value: float) -> int:
    """Return ``value`` megabytes expressed in bytes."""
    return int(value * MB)


def kbps(value: float) -> float:
    """Return ``value`` kilobits per second expressed in bits per second."""
    return value * 1000.0


def mbps(value: float) -> float:
    """Return ``value`` megabits per second expressed in bits per second."""
    return value * 1000.0 * 1000.0


def bytes_to_kb(value: float) -> float:
    """Convert bytes to kilobytes (decimal)."""
    return value / KB


def bytes_to_mb(value: float) -> float:
    """Convert bytes to megabytes (decimal)."""
    return value / MB


def bps_to_kbps(value: float) -> float:
    """Convert bits per second to kilobits per second."""
    return value / 1000.0


def bps_to_mbps(value: float) -> float:
    """Convert bits per second to megabits per second."""
    return value / 1_000_000.0


def transfer_rate_bps(nbytes: float, seconds: float) -> float:
    """Return the average rate in bits/s of ``nbytes`` sent in ``seconds``.

    Returns ``0.0`` for a non-positive duration instead of raising, because
    benchmark analysis routinely encounters empty traces.
    """
    if seconds <= 0:
        return 0.0
    return nbytes * BITS_PER_BYTE / seconds


def minutes(value: float) -> float:
    """Return ``value`` minutes expressed in seconds."""
    return value * 60.0


def format_bytes(value: float) -> str:
    """Human readable byte count using the paper's decimal units."""
    if value >= GB:
        return f"{value / GB:.2f} GB"
    if value >= MB:
        return f"{value / MB:.2f} MB"
    if value >= KB:
        return f"{value / KB:.1f} kB"
    return f"{int(value)} B"


def format_rate(bps: float) -> str:
    """Human readable rate (b/s, kb/s or Mb/s) as printed in the paper."""
    if bps >= 1_000_000:
        return f"{bps / 1_000_000:.2f} Mb/s"
    if bps >= 1000:
        return f"{bps / 1000:.1f} kb/s"
    return f"{bps:.0f} b/s"


def format_duration(seconds: float) -> str:
    """Human readable duration."""
    if seconds >= 60:
        mins = int(seconds // 60)
        return f"{mins} min {seconds - 60 * mins:.0f} s"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000:.0f} ms"
