"""DET rules: nondeterminism hazards in Python sources.

Every result surface of this repository — cache keys, results documents,
sweep documents, shard+merge output — is contractually byte-identical
across ``--jobs N``, seed order and worker topology.  These rules catch
the constructs that historically break that contract *before* they
corrupt a store:

* **DET001** — unsorted directory/glob enumeration (``os.listdir``,
  ``os.scandir``, ``glob.glob``/``iglob``, ``Path.iterdir``/``glob``/
  ``rglob``) used anywhere but directly inside ``sorted(...)``.
  Filesystem enumeration order is whatever the kernel feels like; any
  consumer that iterates it feeds that order into the program.
* **DET002** — the module-level :mod:`random` API (``random.random()``,
  ``random.seed``, ``from random import choice`` ...) anywhere outside
  :mod:`repro.randomness`.  The global RNG is shared mutable state whose
  stream depends on call order across the whole process; all sanctioned
  randomness flows through explicitly seeded ``random.Random`` instances
  from :func:`repro.randomness.make_rng`.
* **DET003** — wall clocks (``time.time()``, ``datetime.now()``/
  ``utcnow()``/``today()``) outside the four allowlisted homes: the
  work-stealing lease board (:mod:`repro.dist.claims`, heartbeat ages),
  the store's TTL GC (:mod:`repro.core.store`), the benchmark
  harness's environment block (:mod:`repro.perf.environment`, the run
  timestamp of a ``BENCH`` document) and the tracer's wall-domain
  context stamp (:mod:`repro.obs.wallclock` — the *stripped* half of a
  flight record).  Monotonic timing
  (``time.perf_counter``/``time.monotonic``) is fine — it feeds the
  run-specific timings record, never the deterministic documents.
* **DET004** — ``json.dumps``/``json.dump`` without an explicit
  ``sort_keys`` argument.  Canonical writers must make their key-order
  contract visible: ``sort_keys=True`` for content-addressed material,
  or an explicit ``sort_keys=False`` where insertion order *is* the
  pinned canonical order (the results documents, whose bytes golden
  fixtures pin).
* **DET005** — iterating a set expression (a set literal, ``set(...)``
  call or set comprehension) in a ``for`` statement or comprehension
  without sorting it first.  Set iteration order depends on insertion
  history and — for strings — on ``PYTHONHASHSEED``.  Membership tests
  (``x in {...}``) are order-free and not flagged.
* **DET006** — numpy's module-level random API (``np.random.seed``,
  ``np.random.rand`` ...), the exact numpy analogue of DET002: those
  functions all share one hidden global ``RandomState`` whose stream
  depends on call order across the process.  Instance-based constructs
  (``default_rng``, ``Generator``, ``RandomState(seed)``, the bit
  generators, ``SeedSequence``) are explicitly seeded and stay legal.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import Rule, SourceModule, iter_parents
from repro.analysis.findings import Finding

__all__ = [
    "UnsortedEnumerationRule",
    "GlobalRandomRule",
    "WallClockRule",
    "ImplicitJsonKeyOrderRule",
    "SetIterationRule",
    "NumpyGlobalRandomRule",
]

#: Enumeration attributes, on any object: the os, glob and pathlib APIs.
_ENUMERATORS = {"listdir", "scandir", "iterdir", "glob", "iglob", "rglob"}


def _attribute_pair(func: ast.AST):
    """``(value-name, attr)`` of a ``name.attr`` expression, else ``None``."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    return None


def _is_sorted_argument(node: ast.AST) -> bool:
    """Whether ``node`` is directly an argument of a ``sorted(...)`` call."""
    for parent in iter_parents(node):
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name) and parent.func.id == "sorted":
            return node in parent.args
        return False
    return False


class UnsortedEnumerationRule(Rule):
    rule_id = "DET001"
    title = "unsorted directory/glob enumeration"

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Attribute) and node.func.attr in _ENUMERATORS):
                continue
            if _is_sorted_argument(node):
                continue
            label = node.func.attr
            yield module.finding(
                node,
                self.rule_id,
                f"unsorted {label}() enumeration: filesystem order leaks into iteration; wrap in sorted(...)",
            )


class GlobalRandomRule(Rule):
    rule_id = "DET002"
    title = "module-level random API"
    allowlist = ("repro/randomness.py",)

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in module.walk():
            if isinstance(node, ast.Attribute):
                pair = _attribute_pair(node)
                if pair is not None and pair[0] == "random" and pair[1] != "Random":
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"module-level random.{pair[1]}: use an explicitly seeded rng "
                        "from repro.randomness.make_rng instead of the shared global stream",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                names = sorted(alias.name for alias in node.names if alias.name != "Random")
                if names:
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"from random import {', '.join(names)}: only random.Random may be imported; "
                        "use repro.randomness.make_rng for seeded streams",
                    )


class WallClockRule(Rule):
    rule_id = "DET003"
    title = "wall clock in a deterministic path"
    allowlist = (
        "repro/dist/claims.py",
        "repro/core/store.py",
        "repro/perf/environment.py",
        "repro/obs/wallclock.py",
    )

    def _is_wall_clock(self, func: ast.AST) -> bool:
        pair = _attribute_pair(func)
        if pair == ("time", "time"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in ("now", "utcnow", "today"):
            if isinstance(func.value, ast.Name) and func.value.id in ("datetime", "date"):
                return True
            inner = _attribute_pair(func.value)
            return inner is not None and inner[1] in ("datetime", "date")
        return False

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in module.walk():
            if isinstance(node, ast.Call) and self._is_wall_clock(node.func):
                yield module.finding(
                    node,
                    self.rule_id,
                    "wall clock in a deterministic path: cell payloads and documents must be "
                    "pure functions of (plan, seed, config); clocks live only in lease ages "
                    "and store TTLs",
                )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                if any(alias.name == "time" for alias in node.names):
                    yield module.finding(
                        node,
                        self.rule_id,
                        "from time import time: keep the module prefix so wall-clock use stays greppable",
                    )


class ImplicitJsonKeyOrderRule(Rule):
    rule_id = "DET004"
    title = "json.dumps without explicit key ordering"

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            pair = _attribute_pair(node.func)
            if pair not in (("json", "dumps"), ("json", "dump")):
                continue
            if any(keyword.arg == "sort_keys" for keyword in node.keywords):
                continue
            yield module.finding(
                node,
                self.rule_id,
                f"json.{pair[1]} without an explicit sort_keys argument: state the key-order "
                "contract (sort_keys=True, or sort_keys=False where insertion order is the "
                "pinned canonical order)",
            )


class NumpyGlobalRandomRule(Rule):
    rule_id = "DET006"
    title = "numpy module-level random API"

    #: Instance-based (explicitly seeded) constructs; everything else on
    #: ``numpy.random`` is an alias into the hidden global ``RandomState``.
    _INSTANCE_BASED = {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in module.walk():
            if isinstance(node, ast.Attribute):
                inner = _attribute_pair(node.value)
                if (
                    inner is not None
                    and inner[0] in ("np", "numpy")
                    and inner[1] == "random"
                    and node.attr not in self._INSTANCE_BASED
                ):
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"{inner[0]}.random.{node.attr}: numpy's module-level random API shares "
                        "one hidden global RandomState; use an explicitly seeded generator "
                        "(numpy.random.default_rng or a bit generator) instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                names = sorted(
                    alias.name for alias in node.names if alias.name not in self._INSTANCE_BASED
                )
                if names:
                    yield module.finding(
                        node,
                        self.rule_id,
                        f"from numpy.random import {', '.join(names)}: only the instance-based "
                        "constructs (default_rng, Generator, the bit generators) may be imported; "
                        "the module-level functions share the hidden global stream",
                    )


class SetIterationRule(Rule):
    rule_id = "DET005"
    title = "iteration over a set expression"

    @staticmethod
    def _is_set_expression(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id == "set"

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        iters: List[ast.AST] = []
        for node in module.walk():
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, ast.comprehension):
                iters.append(node.iter)
        for target in iters:
            if self._is_set_expression(target):
                yield module.finding(
                    target,
                    self.rule_id,
                    "iterating a set: element order depends on insertion history and hash "
                    "seed; sort it (or iterate a list/dict, which preserve order)",
                )
