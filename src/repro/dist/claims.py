"""Atomic claim files: cooperative work-stealing leases over a shared store.

In ``--steal`` mode there is no static partition: every runner walks the
same plan and *claims* cells one by one.  A claim is a small JSON lease
file inside the store's ``.claims`` directory, created with
``O_CREAT | O_EXCL`` — the POSIX-atomic "exactly one winner" primitive that
works on any shared filesystem, needing no server, no locks and no clock
agreement beyond coarse mtimes.

Liveness comes from heartbeats: a working runner periodically bumps its
lease file's mtime.  A lease whose mtime is older than the timeout is
*stale* — its runner is presumed dead — and any other runner may reclaim
it by atomically replacing the lease file with its own record.

The reclaim race is deliberately benign: if two runners reclaim the same
stale lease in the same instant, both recompute the cell.  Cell payloads
are pure functions of their identity and store saves are atomic
last-writer-wins, so a duplicated execution wastes a little work but can
never corrupt the merged result.  That property is what lets the whole
protocol stay this small.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.core.campaign import CampaignCell
from repro.core.store import ResultStore, cache_key
from repro.obs.tracer import current_tracer

__all__ = ["DEFAULT_LEASE_TIMEOUT", "Lease", "ClaimBoard"]

logger = logging.getLogger(__name__)

#: Seconds without a heartbeat after which a lease counts as abandoned.
#: Generous relative to cell runtimes (seconds), small enough that a killed
#: runner's cells are reclaimed within a coffee break.
DEFAULT_LEASE_TIMEOUT = 60.0

_UNSAFE_SEP = "."


@dataclass(frozen=True)
class Lease:
    """One claim file's contents: who holds the cell, since when."""

    runner: str
    pid: int
    cell_key: str
    acquired_at: float
    mtime: float

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since the last heartbeat."""
        return (now if now is not None else time.time()) - self.mtime


class ClaimBoard:
    """The lease files of one shared store, from one runner's point of view.

    All methods are safe to call concurrently from any number of runners on
    the same directory; the only synchronization primitive used is the
    atomicity of ``open(O_CREAT|O_EXCL)`` and ``os.replace``.
    """

    def __init__(
        self,
        store: ResultStore,
        runner_id: str,
        *,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    ) -> None:
        self.root = store.claims_root()
        self.runner_id = runner_id
        self.lease_timeout = lease_timeout

    def path_for(self, cell: CampaignCell) -> str:
        """Claim file for one cell, named for humans plus the cache key."""
        name = _UNSAFE_SEP.join((cell.stage, cell.service, cell.unit, cache_key(cell)[:16]))
        safe = "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in name)
        return os.path.join(self.root, safe + ".claim")

    def _record(self, cell: CampaignCell) -> bytes:
        payload = {
            "runner": self.runner_id,
            "pid": os.getpid(),
            "cell": cache_key(cell),
            "acquired_at": time.time(),
        }
        return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")

    def claim(self, cell: CampaignCell) -> bool:
        """Try to take the cell; ``True`` iff this runner now holds it.

        Fresh leases held by other runners are respected; a stale lease
        (no heartbeat within the timeout) is reclaimed in place.
        """
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(cell)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return self._try_reclaim(cell, path)
        with os.fdopen(fd, "wb") as handle:
            handle.write(self._record(cell))
        current_tracer().count("claims.acquired")
        return True

    def _try_reclaim(self, cell: CampaignCell, path: str) -> bool:
        lease = self._read_lease(path)
        if lease is not None and lease.runner == self.runner_id:
            return True  # already ours (e.g. a relaunched worker resuming)
        if lease is not None and lease.age() < self.lease_timeout:
            return False  # live holder
        if lease is None:
            # Unreadable: junk, or a rival mid-create (the O_EXCL open and
            # the record write are two steps).  Only treat it as abandoned
            # once it is old enough that no live writer can be behind it.
            try:
                age = time.time() - os.stat(path).st_mtime
            except OSError:
                return False  # vanished (released); next pass can claim fresh
            if age < self.lease_timeout:
                return False
        # Holder looks dead (stale mtime) or the file is unreadable junk:
        # replace it atomically with our own record.  If a rival reclaims in
        # the same instant, last-writer-wins and the duplicate execution is
        # harmless (pure cells, atomic saves) — verify ownership afterwards
        # to shrink, not eliminate, the duplicate window.
        tmp_path = path + f".{self.runner_id}.{os.getpid()}.tmp"
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(self._record(cell))
            os.replace(tmp_path, path)
        except OSError:
            return False
        finally:
            if os.path.exists(tmp_path):
                try:
                    os.unlink(tmp_path)
                except OSError:  # pragma: no cover
                    pass
        lease = self._read_lease(path)
        reclaimed = lease is not None and lease.runner == self.runner_id
        if reclaimed:
            tracer = current_tracer()
            tracer.count("claims.acquired")
            tracer.count("claims.reclaimed")
            logger.info("reclaimed stale lease on %s", cell.key)
        return reclaimed

    def heartbeat(self, cell: CampaignCell) -> None:
        """Refresh our lease's mtime so other runners keep hands off."""
        try:
            os.utime(self.path_for(cell), None)
        except OSError:  # lease vanished (released or reclaimed): nothing to refresh
            pass

    def release(self, cell: CampaignCell) -> None:
        """Drop the claim (after the result landed in the store)."""
        try:
            os.unlink(self.path_for(cell))
            current_tracer().count("claims.released")
        except OSError:  # already gone — e.g. reclaimed after we went stale
            pass

    def holder(self, cell: CampaignCell) -> Optional[Lease]:
        """The current lease on a cell, if any."""
        return self._read_lease(self.path_for(cell))

    def is_stale(self, lease: Lease, now: Optional[float] = None) -> bool:
        """Whether a lease has outlived the heartbeat timeout."""
        return lease.age(now) >= self.lease_timeout

    def leases(self) -> List[Lease]:
        """Every readable lease on the board."""
        if not os.path.isdir(self.root):
            return []
        found = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".claim"):
                continue
            lease = self._read_lease(os.path.join(self.root, name))
            if lease is not None:
                found.append(lease)
        return found

    def _read_lease(self, path: str) -> Optional[Lease]:
        try:
            mtime = os.stat(path).st_mtime
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        try:
            return Lease(
                runner=str(payload["runner"]),
                pid=int(payload.get("pid", -1)),
                cell_key=str(payload.get("cell", "")),
                acquired_at=float(payload.get("acquired_at", 0.0)),
                mtime=mtime,
            )
        except (KeyError, TypeError, ValueError):
            return None
